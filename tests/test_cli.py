"""Tests for the ``si-mapper`` command-line interface."""

import pytest

from repro.cli import build_parser, main

CELEMENT = """
.model celement
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a-
c+ b-
a- c-
b- c-
c- a+
c- b+
.marking { <c-,a+> <c-,b+> }
.end
"""


@pytest.fixture
def g_file(tmp_path):
    path = tmp_path / "celement.g"
    path.write_text(CELEMENT)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_map_defaults(self, g_file):
        args = build_parser().parse_args(["map", g_file])
        assert args.literals == 2
        assert args.verify


class TestCommands:
    def test_map(self, g_file, capsys):
        assert main(["map", g_file, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "celement" in out
        assert "C(set_c_1, reset_c_1)" in out
        assert "verification: OK" in out

    def test_map_writes_dot(self, g_file, tmp_path, capsys):
        dot = str(tmp_path / "sg.dot")
        assert main(["map", g_file, "--dot", dot]) == 0
        assert "digraph" in open(dot).read()

    def test_check_ok(self, g_file, capsys):
        assert main(["check", g_file]) == 0
        assert "implementable" in capsys.readouterr().out

    def test_check_benchmark_name(self, capsys):
        """`check` resolves built-in benchmark names like `map` does."""
        assert main(["check", "half"]) == 0
        out = capsys.readouterr().out
        assert "half" in out and "implementable" in out

    def test_check_unknown_benchmark(self, capsys):
        assert main(["check", "zzz-no-such"]) == 2
        assert "error" in capsys.readouterr().err

    def test_check_violations(self, tmp_path, capsys):
        bad = tmp_path / "bad.g"
        bad.write_text("""
.model bad
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b+/2
b+/2 a+
.marking { <b+/2,a+> }
.end
""")
        assert main(["check", str(bad)]) == 2  # consistency error
        assert "error" in capsys.readouterr().err

    def test_bench_list(self, capsys):
        assert main(["bench-list"]) == 0
        out = capsys.readouterr().out
        assert "vbe10b" in out and "wrdatab" in out

    def test_show(self, capsys):
        assert main(["show", "half"]) == 0
        out = capsys.readouterr().out
        assert ".model half" in out
        assert ".end" in out

    def test_show_unknown(self, capsys):
        assert main(["show", "zzz"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_report_subset(self, capsys):
        assert main(["report", "half", "-k", "2", "--no-siegel"]) == 0
        out = capsys.readouterr().out
        assert "half" in out

    def test_map_local_ack_flag(self, g_file, capsys):
        assert main(["map", g_file, "--local-ack"]) == 0

    def test_map_benchmark_name(self, capsys):
        assert main(["map", "half", "-k", "2", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "half" in out
        assert "stage timings:" in out and "reach" in out

    def test_map_cache_dir_warm_run(self, tmp_path, capsys):
        """Second --cache-dir run: identical output, zero heavy
        computes, disk hits in the telemetry."""
        cache = str(tmp_path / "store")
        argv = ["map", "half", "-k", "2", "--timings",
                "--cache-dir", cache]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 computed" in warm
        assert "sg=0" in warm and "implementations=0" in warm
        assert "disk hits" in warm

        def gates(text):
            return text.split("stage timings:")[0]
        assert gates(warm) == gates(cold)

    def test_cache_env_var(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("SI_MAPPER_CACHE", str(tmp_path / "env"))
        assert main(["map", "half", "-k", "2"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "sg" in out

    def test_cache_subcommand(self, tmp_path, capsys):
        cache = str(tmp_path / "store")
        assert main(["map", "half", "-k", "2",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        assert "sg" in capsys.readouterr().out
        assert main(["cache", "gc", "--cache-dir", cache]) == 0
        assert "removed 0 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_cache_subcommand_needs_directory(self, capsys,
                                              monkeypatch):
        monkeypatch.delenv("SI_MAPPER_CACHE", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "no cache directory" in capsys.readouterr().err

    def test_map_solve_csc(self, tmp_path, capsys):
        """CSC-violating input: the pipeline must solve CSC before the
        synthesize stage (the raw graph is not even synthesizable)."""
        from repro.stg.builders import marked_graph
        from repro.stg.writer import write_g
        arcs = [("r+", "ro1+"), ("ro1+", "ai1+"), ("ai1+", "ro1-"),
                ("ro1-", "ai1-"), ("ai1-", "ro2+"), ("ro2+", "ai2+"),
                ("ai2+", "ro2-"), ("ro2-", "ai2-"), ("ai2-", "a+"),
                ("a+", "r-"), ("r-", "a-")]
        stg = marked_graph("badseq", ["r", "ai1", "ai2"],
                           ["a", "ro1", "ro2"], arcs, [("a-", "r+")])
        path = tmp_path / "badseq.g"
        path.write_text(write_g(stg))
        assert main(["map", str(path), "--solve-csc"]) == 0
        out = capsys.readouterr().out
        assert "verification: OK" in out
