"""Tests for the Table-1 reporting layer (on a fast circuit subset)."""

import pytest

from repro.report import (Table1Row, format_rows, summarize, table1,
                          table1_row)

FAST = ["half", "hazard", "chu133"]


@pytest.fixture(scope="module")
def rows():
    return [table1_row(name, libraries=(2,), with_siegel=True)
            for name in FAST]


class TestRow:
    def test_row_fields(self, rows):
        row = rows[0]
        assert row.name == "half"
        assert len(row.histogram) == 6
        assert 2 in row.inserted

    def test_cells_shape(self, rows):
        for row in rows:
            cells = row.cells()
            assert cells[0] == row.name
            assert len(cells) == 13

    def test_na_rendering(self):
        row = Table1Row("fake", [0] * 6, {2: None}, None, (10, 2), None)
        cells = row.cells()
        assert "n.i." in cells
        assert "-" in cells


class TestFormatting:
    def test_format_rows_aligns(self, rows):
        text = format_rows(rows)
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("circuit")
        assert len(lines) == len(rows) + 2  # header + rule

    def test_summarize_mentions_claims(self, rows):
        text = summarize(rows)
        assert "2-literal" in text
        assert "[12]" in text


class TestTable1Driver:
    def test_subset_run(self):
        rows, text = table1(names=["half", "hazard"], libraries=(2,),
                            with_siegel=False)
        assert len(rows) == 2
        assert "half" in text and "hazard" in text
