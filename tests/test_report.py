"""Tests for the Table-1 reporting layer (on a fast circuit subset)."""

import pytest

from repro.report import (Table1Row, format_rows, summarize, table1,
                          table1_row)

FAST = ["half", "hazard", "chu133"]


@pytest.fixture(scope="module")
def rows():
    return [table1_row(name, libraries=(2,), with_siegel=True)
            for name in FAST]


class TestRow:
    def test_row_fields(self, rows):
        row = rows[0]
        assert row.name == "half"
        assert len(row.histogram) == 6
        assert 2 in row.inserted

    def test_cells_shape(self, rows):
        # columns follow the libraries the row actually ran: name +
        # 6 histogram + one i=k column per library + [12] + 2 costs
        for row in rows:
            cells = row.cells()
            assert cells[0] == row.name
            assert len(cells) == 11
            assert row.libraries == (2,)

    def test_cells_full_battery(self):
        row = Table1Row("fake", [0] * 6, {2: 1, 3: 0, 4: 0}, None,
                        (10, 2), (12, 2))
        assert len(row.cells()) == 13

    def test_na_rendering(self):
        row = Table1Row("fake", [0] * 6, {2: None}, None, (10, 2), None)
        cells = row.cells()
        assert "n.i." in cells
        assert "-" in cells

    def test_not_run_is_not_ni(self):
        """A library that never ran renders '-', not 'n.i.'."""
        row = Table1Row("fake", [0] * 6, {3: 2}, None, (10, 2), None)
        cells = row.cells((2, 3, 4))
        k_cells = cells[7:10]
        assert k_cells == ["-", "2", "-"]
        assert "n.i." not in k_cells

    def test_siegel_not_run_is_not_ni(self):
        """Same distinction for the [12] baseline column."""
        ran = Table1Row("a", [0] * 6, {2: 1}, None, (10, 2), None,
                        siegel_ran=True)
        skipped = Table1Row("b", [0] * 6, {2: 1}, None, (10, 2), None,
                            siegel_ran=False)
        assert ran.cells()[8] == "n.i."
        assert skipped.cells()[8] == "-"
        assert "[12]" not in summarize([skipped])

    def test_csc_column_only_on_request(self):
        """The auxiliary csc column must not perturb the legacy cell
        layout: it only appears with ``with_csc`` and renders '-' for
        rows whose run skipped the CSC stage."""
        solved = Table1Row("a", [0] * 6, {2: 1}, None, (10, 2), None,
                           csc_signals=2)
        skipped = Table1Row("b", [0] * 6, {2: 1}, None, (10, 2), None)
        assert len(solved.cells()) == len(skipped.cells()) == 11
        assert solved.cells(with_csc=True)[-1] == "2"
        assert skipped.cells(with_csc=True)[-1] == "-"


class TestFormatting:
    def test_format_rows_aligns(self, rows):
        text = format_rows(rows)
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("circuit")
        assert len(lines) == len(rows) + 2  # header + rule

    def test_format_rows_header_follows_libraries(self, rows):
        # rows ran k=2 only: exactly the i=2 column, no phantom i=3/i=4
        header = format_rows(rows).splitlines()[0]
        assert "i=2" in header
        assert "i=3" not in header and "i=4" not in header

    def test_format_rows_csc_column_follows_rows(self):
        plain = Table1Row("a", [0] * 6, {2: 1}, None, (10, 2), None)
        solved = Table1Row("b", [0] * 6, {2: 1}, None, (10, 2), None,
                           csc_signals=3)
        assert "csc" not in format_rows([plain]).splitlines()[0]
        with_csc = format_rows([plain, solved]).splitlines()
        assert with_csc[0].rstrip().endswith("csc")
        # the row that never ran the stage renders '-'
        assert with_csc[2].rstrip().endswith("-")
        assert with_csc[3].rstrip().endswith("3")

    def test_summarize_mentions_claims(self, rows):
        text = summarize(rows)
        assert "2-literal" in text
        assert "[12]" in text

    def test_summarize_follows_smallest_library(self):
        row = Table1Row("fake", [0] * 6, {3: 1}, None, (10, 2), (11, 2))
        assert "3-literal" in summarize([row])

    def test_summarize_skips_rows_that_never_ran_smallest(self):
        """Heterogeneous rows: a k=3-only row is not 'n.i. at k=2'."""
        ran_k2 = Table1Row("a", [0] * 6, {2: 1}, None, (10, 2), (11, 2))
        only_k3 = Table1Row("b", [0] * 6, {3: 1}, None, (10, 2),
                            (11, 2))
        text = summarize([ran_k2, only_k3])
        assert "1 of 1 circuits implemented with 2-literal" in text


class TestTable1Driver:
    def test_subset_run(self):
        rows, text = table1(names=["half", "hazard"], libraries=(2,),
                            with_siegel=False)
        assert len(rows) == 2
        assert "half" in text and "hazard" in text
