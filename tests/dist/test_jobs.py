"""The synthesis job service: live-server submit/poll/fetch flows,
auth and quotas, cancellation, work stealing, the maintenance-body
and stalled-client server fixes, and remote-degrade interplay."""

import json
import socket
import threading
import time
import urllib.request

import pytest

from repro.bench_suite import benchmark
from repro.dist.client import ServiceClient
from repro.dist.jobs import (ClaimPool, JobParams, JobRequestError,
                             JobService, QuotaExceeded,
                             canonical_row_bytes, job_id_of)
from repro.dist.remote import RemoteArtifactCache
from repro.dist.server import ArtifactServer
from repro.errors import ServiceError
from repro.pipeline import Pipeline, PipelineConfig
from repro.stg.writer import write_g

#: nothing listens here (port 1 is privileged and unused)
DEAD_URL = "http://127.0.0.1:1"

HALF_G = write_g(benchmark("half"))
HAZARD_G = write_g(benchmark("hazard"))

#: parses fine, fails in the pipeline: along the cycle a rises twice
#: without falling, so the reach stage raises a consistency error
BROKEN_G = """.model broken
.outputs a b
.graph
a+ b+
b+ a+
.marking { <b+,a+> }
.end
"""

#: the fast battery used throughout: one library, no baseline
PARAMS = JobParams(libraries=(2,), with_siegel=False)


def local_row_bytes(name, params=PARAMS):
    """What the single-process run computes for this battery."""
    record = Pipeline(PipelineConfig(
        libraries=params.libraries, with_siegel=params.with_siegel,
        keep_artifacts=False)).run(name)
    return canonical_row_bytes(record.row)


@pytest.fixture
def server(tmp_path):
    """A live serve daemon with the job service enabled."""
    with ArtifactServer(str(tmp_path / "served"), port=0,
                        workers=2).start_background() as live:
        yield live


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


@pytest.fixture
def queued_server(tmp_path):
    """A server whose job service exists but never runs anything —
    submissions stay deterministically queued (cancel/quota tests)."""
    with ArtifactServer(str(tmp_path / "served"), port=0,
                        workers=0).start_background() as live:
        live.jobs = JobService(cache=None, workers=1, quota=0)
        # deliberately NOT started: no worker thread ever dequeues
        yield live


# ----------------------------------------------------------------------
# The headline flow
# ----------------------------------------------------------------------

class TestSubmitPollFetch:
    def test_result_byte_identical_to_local_run(self, client):
        row = client.submit_and_wait(HALF_G, PARAMS)
        assert row == local_row_bytes("half")

    def test_status_reports_stage_timings(self, client):
        accepted = client.submit(HALF_G, PARAMS)
        deadline = time.monotonic() + 60
        while True:
            document = client.status(accepted["id"])
            if document["state"] == "done":
                break
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert set(document["timings"]) == {
            "load", "reach", "synthesize", "map", "report"}
        assert all(seconds >= 0
                   for seconds in document["timings"].values())
        assert document["wait_seconds"] >= 0
        assert document["run_seconds"] > 0
        statuses = [(event["stage"], event["status"])
                    for event in document["events"]]
        assert ("load", "start") == statuses[0]

    def test_result_while_queued_is_202(self, queued_server):
        client = ServiceClient(queued_server.url)
        accepted = client.submit(HALF_G, PARAMS)
        assert client.result(accepted["id"]) is None

    def test_unparseable_g_is_400(self, client):
        with pytest.raises(ServiceError) as failure:
            client.submit("this is not a .g file", PARAMS)
        assert failure.value.status == 400

    def test_pipeline_error_becomes_failed_job(self, client):
        accepted = client.submit(BROKEN_G, PARAMS)
        deadline = time.monotonic() + 60
        while True:
            document = client.status(accepted["id"])
            if document["state"] in ("done", "failed"):
                break
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert document["state"] == "failed"
        assert document["error"]
        with pytest.raises(ServiceError) as failure:
            client.result(accepted["id"])
        assert failure.value.status == 409

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as failure:
            client.status("0" * 32)
        assert failure.value.status == 404

    def test_stats_exports_queue_counters(self, server, client):
        client.submit_and_wait(HALF_G, PARAMS)
        with urllib.request.urlopen(server.url + "/stats") as reply:
            stats = json.loads(reply.read())
        jobs = stats["jobs"]
        assert jobs["submitted"] == 1
        assert jobs["completed"] == 1
        assert jobs["queue_depth"] == 0
        assert jobs["run_seconds_total"] > 0
        assert jobs["by_state"] == {"done": 1}


class TestDeduplication:
    def test_concurrent_submits_compute_once(self, server, client):
        ids = []
        barrier = threading.Barrier(4)

        def submit():
            barrier.wait()
            ids.append(client.submit(HALF_G, PARAMS)["id"])

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(ids)) == 1
        assert client.submit_and_wait(HALF_G, PARAMS) \
            == local_row_bytes("half")
        payload = server.jobs.stats_payload()
        assert payload["submitted"] == 1
        assert payload["deduplicated"] >= 4   # 4 racers + the waiter
        assert payload["completed"] == 1

    def test_whitespace_variants_share_a_job(self, client):
        first = client.submit(HALF_G, PARAMS)
        second = client.submit("\n\n" + HALF_G.replace("\n", "\n\n"),
                               PARAMS)
        assert first["id"] == second["id"]
        assert second["created"] is False

    def test_different_battery_is_a_different_job(self, client):
        first = client.submit(HALF_G, PARAMS)
        second = client.submit(
            HALF_G, JobParams(libraries=(2, 3), with_siegel=False))
        assert first["id"] != second["id"]


# ----------------------------------------------------------------------
# Auth, quotas, cancellation
# ----------------------------------------------------------------------

class TestAuthAndQuota:
    @pytest.fixture
    def keyed_server(self, tmp_path):
        with ArtifactServer(str(tmp_path / "served"), port=0,
                            workers=0,
                            api_keys=("tenant-a", "tenant-b"),
                            ).start_background() as live:
            live.jobs = JobService(cache=None, workers=1, quota=1)
            yield live

    def test_missing_key_is_403(self, keyed_server):
        with pytest.raises(ServiceError) as failure:
            ServiceClient(keyed_server.url).submit(HALF_G, PARAMS)
        assert failure.value.status == 403

    def test_wrong_key_is_403_everywhere(self, keyed_server):
        client = ServiceClient(keyed_server.url, api_key="intruder")
        for call in (lambda: client.submit(HALF_G, PARAMS),
                     lambda: client.status("0" * 32),
                     lambda: client.cancel("0" * 32),
                     lambda: client.claim(["half"])):
            with pytest.raises(ServiceError) as failure:
                call()
            assert failure.value.status == 403

    def test_quota_exhaustion_is_429(self, keyed_server):
        client = ServiceClient(keyed_server.url, api_key="tenant-a")
        client.submit(HALF_G, PARAMS)
        with pytest.raises(ServiceError) as failure:
            client.submit(HAZARD_G, PARAMS)    # second *active* job
        assert failure.value.status == 429
        assert keyed_server.jobs.stats_payload(
        )["quota_rejections"] == 1

    def test_quota_is_per_tenant(self, keyed_server):
        ServiceClient(keyed_server.url,
                      api_key="tenant-a").submit(HALF_G, PARAMS)
        other = ServiceClient(keyed_server.url, api_key="tenant-b")
        accepted = other.submit(HAZARD_G, PARAMS)
        assert accepted["state"] == "queued"

    def test_dedup_hit_does_not_charge_quota(self, keyed_server):
        client = ServiceClient(keyed_server.url, api_key="tenant-a")
        client.submit(HALF_G, PARAMS)
        again = client.submit(HALF_G, PARAMS)   # same job, no charge
        assert again["created"] is False

    def test_artifact_api_stays_open(self, keyed_server):
        """Keys guard the job API; the artifact cache keeps the
        trusted-cluster model (existing workers keep working)."""
        with urllib.request.urlopen(
                keyed_server.url + "/healthz") as reply:
            assert reply.status == 200


class TestCancellation:
    def test_cancel_mid_queue(self, queued_server):
        client = ServiceClient(queued_server.url)
        accepted = client.submit(HALF_G, PARAMS)
        cancelled = client.cancel(accepted["id"])
        assert cancelled["state"] == "cancelled"
        assert client.status(accepted["id"])["state"] == "cancelled"

    def test_cancel_is_not_idempotent(self, queued_server):
        client = ServiceClient(queued_server.url)
        accepted = client.submit(HALF_G, PARAMS)
        client.cancel(accepted["id"])
        with pytest.raises(ServiceError) as failure:
            client.cancel(accepted["id"])
        assert failure.value.status == 409

    def test_cancelled_job_never_runs(self, queued_server):
        client = ServiceClient(queued_server.url)
        accepted = client.submit(HALF_G, PARAMS)
        client.cancel(accepted["id"])
        queued_server.jobs.start()       # workers come up afterwards
        time.sleep(0.3)                  # ample time to (not) run it
        payload = queued_server.jobs.stats_payload()
        assert payload["completed"] == 0
        assert payload["by_state"] == {"cancelled": 1}

    def test_cancel_unknown_job_is_404(self, queued_server):
        with pytest.raises(ServiceError) as failure:
            ServiceClient(queued_server.url).cancel("0" * 32)
        assert failure.value.status == 404

    def test_done_job_does_not_cancel(self, client):
        accepted = client.submit(HALF_G, PARAMS)
        client.submit_and_wait(HALF_G, PARAMS)
        with pytest.raises(ServiceError) as failure:
            client.cancel(accepted["id"])
        assert failure.value.status == 409

    def test_resubmit_after_cancel_is_a_fresh_run(self, queued_server):
        client = ServiceClient(queued_server.url)
        first = client.submit(HALF_G, PARAMS)
        client.cancel(first["id"])
        second = client.submit(HALF_G, PARAMS)
        assert second["id"] == first["id"]      # stable content id
        assert second["created"] is True        # but a fresh run
        assert client.status(first["id"])["state"] == "queued"


# ----------------------------------------------------------------------
# Work stealing
# ----------------------------------------------------------------------

class TestClaimProtocol:
    def test_two_workers_partition_the_list(self, server):
        names = ["half", "hazard", "chu133", "dff"]
        one = ServiceClient(server.url)
        two = ServiceClient(server.url)
        claims = {"one": [], "two": []}
        while True:
            got = one.claim(names)["claimed"]
            if got is None:
                break
            claims["one"].append(got)
            got = two.claim(names)["claimed"]
            if got is not None:
                claims["two"].append(got)
        union = claims["one"] + claims["two"]
        assert sorted(union) == sorted(names)    # disjoint + complete
        assert len(set(union)) == len(names)

    def test_claim_all_drains_in_order(self, server):
        names = ["half", "hazard"]
        assert ServiceClient(server.url).claim_all(names) == names
        assert ServiceClient(server.url).claim_all(names) == []

    def test_distinct_batteries_have_distinct_pools(self, server):
        client = ServiceClient(server.url)
        assert client.claim(["half"])["claimed"] == "half"
        assert client.claim(["half", "hazard"])["claimed"] == "half"

    def test_malformed_claim_is_400(self, server):
        client = ServiceClient(server.url)
        for names in ([], [1, 2]):
            with pytest.raises(ServiceError) as failure:
                client.claim(names)
            assert failure.value.status == 400
        # a bare string never even leaves the client — list("half")
        # would claim letters, not circuits
        with pytest.raises(ServiceError):
            client.claim("half")

    def test_pool_unit_semantics(self):
        pool = ClaimPool()
        names = ["a", "b"]
        assert pool.claim(names)["claimed"] == "a"
        assert pool.claim(names)["remaining"] == 0
        assert pool.claim(names)["claimed"] is None
        assert pool.stats_payload()["claims"] == 2
        with pytest.raises(JobRequestError):
            pool.claim([])


# ----------------------------------------------------------------------
# Remote-degrade interplay: jobs complete from the disk tier
# ----------------------------------------------------------------------

class TestDegradedUpstream:
    def test_job_completes_while_upstream_is_dead(self, tmp_path):
        """The job pipeline runs over disk ⊕ upstream; with the
        upstream unreachable (cooldown pinned open) the job must
        still finish — and still match the local run exactly."""
        dead = RemoteArtifactCache(DEAD_URL, cooldown=3600)
        with ArtifactServer(str(tmp_path / "served"), port=0,
                            workers=1,
                            upstream=dead).start_background() as live:
            row = ServiceClient(live.url).submit_and_wait(
                HALF_G, PARAMS)
        assert row == local_row_bytes("half")
        assert dead.stats.errors >= 1        # it really was consulted

    def test_second_job_warm_starts_from_disk(self, tmp_path):
        dead = RemoteArtifactCache(DEAD_URL, cooldown=3600)
        with ArtifactServer(str(tmp_path / "served"), port=0,
                            workers=1,
                            upstream=dead).start_background() as live:
            client = ServiceClient(live.url)
            first = client.submit_and_wait(HALF_G, PARAMS)
            # different battery → different job id, same artifacts
            second = client.submit_and_wait(
                HALF_G, JobParams(libraries=(2,), with_siegel=True))
            assert first == local_row_bytes("half")
            assert json.loads(second)["name"] == "half"


# ----------------------------------------------------------------------
# Server hardening: maintenance bodies and stalled clients
# ----------------------------------------------------------------------

def _raw_request(server, payload, client_timeout=5.0):
    """Send raw bytes on a fresh socket; return what the server sends
    back (b"" if it closed without replying)."""
    host, port = server.server_address[:2]
    with socket.create_connection((host, port),
                                  timeout=client_timeout) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                break
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)


class TestMaintenanceBodyDiscipline:
    KEY = ("sg", "f" * 64)

    @pytest.fixture
    def stocked(self, tmp_path):
        with ArtifactServer(str(tmp_path / "served"),
                            port=0).start_background() as live:
            assert live.store.put(self.KEY, "precious")
            yield live

    def test_oversized_clear_is_413_and_store_untouched(self,
                                                        stocked):
        reply = _raw_request(stocked, (
            b"POST /clear HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 100000\r\n\r\n"))
        assert reply.startswith(b"HTTP/1.1 413")
        assert stocked.store.get(self.KEY) == "precious"

    def test_short_read_clear_is_400_and_store_untouched(self,
                                                         stocked):
        reply = _raw_request(stocked, (
            b"POST /clear HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 10\r\n\r\nabc"))      # 3 of 10 bytes
        assert reply.startswith(b"HTTP/1.1 400")
        assert stocked.store.get(self.KEY) == "precious"

    def test_bad_content_length_gc_is_400(self, stocked):
        reply = _raw_request(stocked, (
            b"POST /gc HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: banana\r\n\r\n"))
        assert reply.startswith(b"HTTP/1.1 400")
        assert stocked.store.get(self.KEY) == "precious"

    def test_wellformed_clear_still_works(self, stocked):
        reply = _raw_request(stocked, (
            b"POST /clear HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 0\r\n\r\n"))
        assert reply.startswith(b"HTTP/1.1 200")
        from repro.pipeline.store import MISS
        assert stocked.store.get(self.KEY) is MISS


class TestStalledClients:
    @pytest.fixture
    def impatient(self, tmp_path):
        """A server that gives each connection half a second."""
        with ArtifactServer(str(tmp_path / "served"), port=0,
                            workers=0, request_timeout=0.5,
                            ).start_background() as live:
            live.jobs = JobService(cache=None, workers=1)
            yield live

    def _stall(self, server, preamble):
        """Open a connection, send a partial request, then stall.
        Returns True when the server hung up within the timeout."""
        host, port = server.server_address[:2]
        with socket.create_connection((host, port),
                                      timeout=5.0) as sock:
            sock.sendall(preamble)
            # no more bytes: the handler blocks reading the body
            # until its socket timeout fires and closes us
            try:
                return sock.recv(1 << 16) == b""
            except socket.timeout:
                return False

    def test_stalled_put_does_not_pin_a_worker(self, impatient):
        assert self._stall(impatient, (
            b"PUT /artifact/sg/" + b"a" * 64 + b" HTTP/1.1\r\n"
            b"Host: x\r\nContent-Length: 1000\r\n\r\npartial"))

    def test_job_submission_inherits_the_timeout(self, impatient):
        assert self._stall(impatient, (
            b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 1000\r\n\r\n.model half"))
        # the half-submitted job never reached the service
        assert impatient.jobs.stats_payload()["submitted"] == 0

    def test_stalled_headers_time_out_too(self, impatient):
        assert self._stall(impatient,
                           b"GET /healthz HTTP/1.1\r\nHost")

    def test_healthy_requests_unaffected(self, impatient):
        with urllib.request.urlopen(
                impatient.url + "/healthz") as reply:
            assert reply.status == 200


# ----------------------------------------------------------------------
# Unit corners
# ----------------------------------------------------------------------

class TestJobParams:
    def test_query_round_trip(self):
        params = JobParams(libraries=(2, 4), with_siegel=False,
                           solve_csc=True, csc_method="regions")
        parsed = JobParams.from_query(
            {key: [value] for key, value in
             (pair.split("=") for pair in
              params.to_query().split("&"))})
        assert parsed == params

    def test_defaults(self):
        assert JobParams.from_query({}) == JobParams()

    def test_regions_implies_solve_csc(self):
        parsed = JobParams.from_query({"csc_method": ["regions"]})
        assert parsed.solve_csc

    def test_bad_values_raise(self):
        for query in ({"k": ["0"]}, {"k": ["x"]}, {"k": [""]},
                      {"csc_method": ["magic"]}):
            with pytest.raises(JobRequestError):
                JobParams.from_query(query)

    def test_job_id_is_stable_and_sensitive(self):
        base = job_id_of(HALF_G, PARAMS)
        assert base == job_id_of(HALF_G, PARAMS)
        assert base != job_id_of(HAZARD_G, PARAMS)
        assert base != job_id_of(HALF_G, JobParams())


class TestJobServiceUnits:
    def test_needs_a_worker(self):
        with pytest.raises(ValueError):
            JobService(workers=0)

    def test_quota_enforced_at_submit(self):
        service = JobService(cache=None, workers=1, quota=1)
        service.submit(HALF_G, "tenant", PARAMS)
        with pytest.raises(QuotaExceeded):
            service.submit(HAZARD_G, "tenant", PARAMS)
        service.submit(HAZARD_G, "other", PARAMS)   # per-tenant
