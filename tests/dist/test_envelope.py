"""The shared envelope format: codecs, v1 interop, transcoding, and
codec negotiation — the seam every storage backend moves bytes
through."""

import pickle
import zlib

import pytest

from repro.dist import envelope
from repro.dist.envelope import (ARTIFACT_FORMATS, available_codecs,
                                 codec_of, decode_entry, encode_entry,
                                 negotiate_codecs, plausible_envelope,
                                 raw_size_of, read_header,
                                 resolve_codec, transcode)

KEY = ("sg", "a" * 64)
#: a payload that deflates extremely well (like real state graphs)
VALUE = {"states": ["0101" * 64] * 200, "arcs": list(range(64)) * 32}
VERSION = ARTIFACT_FORMATS["sg"]


def v1_envelope(key, value, version):
    """Bytes exactly as the pre-codec store wrote them: header without
    codec/raw_size stamps, payload as a raw pickle."""
    header = {"format": version, "key": repr(key)}
    return (pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
            + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


class TestCodecRegistry:
    def test_identity_and_zlib_always_available(self):
        assert "identity" in available_codecs()
        assert "zlib" in available_codecs()

    def test_resolve_default(self):
        assert resolve_codec(None) == envelope.DEFAULT_CODEC

    def test_resolve_missing_zstd_falls_back_to_zlib(self, monkeypatch):
        monkeypatch.delitem(envelope._CODECS, "zstd", raising=False)
        assert resolve_codec("zstd") == "zlib"

    def test_resolve_unknown_codec_raises(self):
        with pytest.raises(ValueError):
            resolve_codec("lzma-but-misspelled")


class TestRoundTrip:
    @pytest.mark.parametrize("codec", ["identity", "zlib"])
    def test_round_trip(self, codec):
        data = encode_entry(KEY, VALUE, VERSION, codec=codec)
        status, payload = decode_entry(data, KEY, VERSION)
        assert status == "hit"
        assert payload == VALUE

    def test_zlib_actually_compresses(self):
        compressed = encode_entry(KEY, VALUE, VERSION, codec="zlib")
        raw = encode_entry(KEY, VALUE, VERSION, codec="identity")
        assert len(compressed) < len(raw) / 2
        assert codec_of(compressed) == "zlib"
        assert raw_size_of(compressed) == raw_size_of(raw)

    def test_incompressible_payload_falls_back_to_identity(self):
        """The stamp records what happened, not what was asked for."""
        noise = zlib.compress(bytes((i * 97 + 13) % 251
                                    for i in range(4096)))
        data = encode_entry(KEY, noise, VERSION, codec="zlib")
        assert codec_of(data) == "identity"
        assert decode_entry(data, KEY, VERSION)[0] == "hit"

    def test_wrong_format_is_stale(self):
        data = encode_entry(KEY, VALUE, VERSION)
        assert decode_entry(data, KEY, VERSION + 1)[0] == "stale"

    def test_wrong_key_is_stale(self):
        data = encode_entry(KEY, VALUE, VERSION)
        assert decode_entry(data, ("sg", "b" * 64),
                            VERSION)[0] == "stale"

    def test_garbage_is_error(self):
        assert decode_entry(b"not an envelope", KEY,
                            VERSION)[0] == "error"

    def test_corrupt_body_is_error(self):
        data = encode_entry(KEY, VALUE, VERSION, codec="zlib")
        header_len = read_header(data)[1]
        torn = data[:header_len] + b"\x00garbage"
        assert decode_entry(torn, KEY, VERSION)[0] == "error"


class TestV1Interop:
    """Pre-codec envelopes keep hitting, v2-identity stays v1-readable."""

    def test_v1_envelope_decodes_as_hit(self):
        data = v1_envelope(KEY, VALUE, VERSION)
        status, payload = decode_entry(data, KEY, VERSION)
        assert status == "hit"
        assert payload == VALUE
        assert codec_of(data) == "identity"

    def test_v1_raw_size_is_the_body_length(self):
        data = v1_envelope(KEY, VALUE, VERSION)
        header_len = read_header(data)[1]
        assert raw_size_of(data) == len(data) - header_len

    def test_v2_identity_payload_is_a_raw_pickle(self):
        """What lets a v1 decoder (header + pickle.loads of the rest)
        read a v2-identity envelope."""
        data = encode_entry(KEY, VALUE, VERSION, codec="identity")
        offset = read_header(data)[1]
        assert pickle.loads(data[offset:]) == VALUE

    def test_unknown_codec_stamp_is_stale_not_error(self):
        """An entry compressed by a newer binary is a miss here — but
        not garbage to unlink: that binary can still read it."""
        header = {"format": VERSION, "key": repr(KEY),
                  "codec": "quantum-lz", "raw_size": 3}
        data = (pickle.dumps(header,
                             protocol=pickle.HIGHEST_PROTOCOL)
                + b"???")
        assert decode_entry(data, KEY, VERSION)[0] == "stale"


class TestTranscode:
    def test_zlib_to_identity_without_unpickling(self):
        compressed = encode_entry(KEY, VALUE, VERSION, codec="zlib")
        identity = transcode(compressed, "identity")
        assert codec_of(identity) == "identity"
        assert decode_entry(identity, KEY, VERSION) == ("hit", VALUE)

    def test_v1_to_zlib_migration(self):
        old = v1_envelope(KEY, VALUE, VERSION)
        migrated = transcode(old, "zlib")
        assert codec_of(migrated) == "zlib"
        assert len(migrated) < len(old)
        assert decode_entry(migrated, KEY, VERSION) == ("hit", VALUE)

    def test_transcode_of_garbage_is_none(self):
        assert transcode(b"junk", "zlib") is None

    def test_transcode_preserves_format_and_key(self):
        data = transcode(encode_entry(KEY, VALUE, VERSION), "identity")
        header = read_header(data)[0]
        assert header["format"] == VERSION
        assert header["key"] == repr(KEY)


class TestNegotiation:
    def test_missing_header_is_a_v1_client(self):
        assert negotiate_codecs(None) == frozenset({"identity"})
        assert negotiate_codecs("") == frozenset({"identity"})

    def test_advertised_codecs_are_accepted(self):
        accepted = negotiate_codecs("identity, zlib")
        assert "zlib" in accepted
        assert "identity" in accepted

    def test_unknown_tokens_are_ignored(self):
        accepted = negotiate_codecs("zlib, quantum-lz")
        assert accepted == frozenset({"identity", "zlib"})

    def test_identity_is_always_accepted(self):
        assert "identity" in negotiate_codecs("zlib")


class TestHeaderSafety:
    def test_header_reader_refuses_objects(self):
        """A header that smuggles a global reference parses as no
        header at all — the restricted unpickler cannot construct it."""
        hostile = pickle.dumps(pickle.UnpicklingError("x"))
        assert read_header(hostile) is None
        assert not plausible_envelope(hostile)

    def test_plausible_envelope_accepts_real_entries(self):
        assert plausible_envelope(encode_entry(KEY, VALUE, VERSION))
        assert plausible_envelope(v1_envelope(KEY, VALUE, VERSION))
