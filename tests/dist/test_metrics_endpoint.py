"""``GET /metrics`` on a live daemon: content type, exposition shape,
and the job/http instruments a scrape must cover."""

import time
import urllib.request

import pytest

from repro.bench_suite import benchmark
from repro.dist.client import ServiceClient
from repro.dist.jobs import JobParams
from repro.dist.server import ArtifactServer
from repro.obs.metrics import use_registry
from repro.stg.writer import write_g

HALF_G = write_g(benchmark("half"))
PARAMS = JobParams(libraries=(2,), with_siegel=False)


@pytest.fixture
def live(tmp_path):
    with use_registry():
        with ArtifactServer(str(tmp_path / "served"), port=0,
                            workers=2).start_background() as server:
            yield server


def scrape(server):
    with urllib.request.urlopen(server.url + "/metrics",
                                timeout=10.0) as response:
        return (response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


def test_content_type_and_shape(live):
    content_type, text = scrape(live)
    assert content_type == "text/plain; version=0.0.4; charset=utf-8"
    assert text.endswith("\n")
    lines = text.splitlines()
    assert "# TYPE si_jobs_workers gauge" in lines
    assert "si_jobs_workers 2" in lines
    assert "# TYPE si_jobs_queue_depth gauge" in lines
    # every non-comment line is `name{labels} value` or `name value`
    for line in lines:
        if line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        assert name and value
        float("inf" if value == "+Inf" else value)


def test_scrape_reflects_job_activity(live):
    ServiceClient(live.url).submit_and_wait(HALF_G, PARAMS)
    _, text = scrape(live)
    assert "# TYPE si_jobs counter" in text.splitlines()
    assert 'si_jobs_total{event="submitted"} 1' in text
    assert 'si_jobs_total{event="completed"} 1' in text
    assert 'si_stage_seconds_count{stage="map"} 1' in text
    assert 'si_http_requests_total{' in text
    # the scrape endpoint is itself instrumented; each request is
    # recorded just after its response goes out, so allow the previous
    # scrape's sample a moment to land
    deadline = time.monotonic() + 5.0
    while 'route="/metrics"' not in text:
        assert time.monotonic() < deadline, "scrape never self-counted"
        time.sleep(0.02)
        _, text = scrape(live)


def test_metrics_is_unkeyed(tmp_path):
    """Monitoring stays open on a key-protected daemon — scrapers do
    not carry tenant keys."""
    with use_registry():
        with ArtifactServer(str(tmp_path / "served"), port=0,
                            workers=1,
                            api_keys=("secret",)
                            ).start_background() as live:
            content_type, text = scrape(live)
    assert content_type.startswith("text/plain")
    assert "si_jobs_workers 1" in text
