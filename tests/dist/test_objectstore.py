"""The S3-compatible backend: spec parsing, round trips against the
in-process fake, the degrade-to-miss failure model, maintenance over
listings, and pipeline warm starts through ``--cache-s3``."""

import pytest

from repro.dist.base import make_store
from repro.dist.envelope import (ARTIFACT_FORMATS, STORE_LAYOUT,
                                 codec_of, digest_of, encode_entry,
                                 kind_of)
from repro.dist.objectstore import (ObjectStoreArtifactCache,
                                    TransportError,
                                    parse_object_store_spec)
from repro.dist.remote import RemoteArtifactCache, TieredStore
from repro.dist.s3fake import FakeS3Server
from repro.errors import StoreConfigError
from repro.pipeline import DiskArtifactCache, Pipeline, PipelineConfig
from repro.pipeline.store import MISS

KEY = ("sg", "c" * 64)
VALUE = {"states": ["01" * 40] * 100, "arcs": list(range(32)) * 8}
BUCKET = "si-cache"
PREFIX = "team"
DEAD_SPEC = "http://127.0.0.1:1/si-cache/team"


@pytest.fixture
def fake():
    with FakeS3Server(port=0).start_background() as live:
        yield live


@pytest.fixture
def spec(fake):
    return f"{fake.url}/{BUCKET}/{PREFIX}"


@pytest.fixture
def cache(spec):
    return ObjectStoreArtifactCache(spec)


class TestSpecParsing:
    def test_bare_bucket_prefix(self):
        assert (parse_object_store_spec("bucket/team/t1")
                == (None, "bucket", "team/t1"))

    def test_s3_scheme(self):
        assert (parse_object_store_spec("s3://bucket/pre")
                == (None, "bucket", "pre"))

    def test_explicit_endpoint(self):
        assert (parse_object_store_spec("http://h:9000/bucket/pre")
                == ("http://h:9000", "bucket", "pre"))

    def test_endpoint_without_prefix(self):
        assert (parse_object_store_spec("https://host/bucket")
                == ("https://host", "bucket", ""))

    @pytest.mark.parametrize("bad", ["", "   ", "s3://", "http:///x",
                                     "http://host"])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(StoreConfigError):
            parse_object_store_spec(bad)

    def test_bare_spec_without_boto3_is_a_config_error(self):
        try:
            import boto3                          # noqa: F401
        except ImportError:
            pass
        else:
            pytest.skip("boto3 is installed here")
        with pytest.raises(StoreConfigError, match="boto3"):
            ObjectStoreArtifactCache("bucket/prefix")


class TestRoundTrip:
    def test_miss_then_put_then_hit(self, cache):
        assert cache.get(KEY) is MISS
        assert cache.stats.misses == 1
        assert cache.put(KEY, VALUE)
        assert cache.get(KEY) == VALUE
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1
        assert cache.stats.bytes_written > 0
        assert cache.stats.bytes_read == cache.stats.bytes_written

    def test_objects_are_codec_stamped_envelopes(self, fake, cache):
        cache.put(KEY, VALUE)
        key = (f"{PREFIX}/{STORE_LAYOUT}/{kind_of(KEY)}"
               f"/{digest_of(KEY)}")
        body = fake.lookup(BUCKET, key)[0]
        assert codec_of(body) == "zlib"

    def test_same_bytes_any_backend_reads(self, fake, spec, cache):
        """Content addressing is backend-independent: an envelope
        uploaded through HTTP-transport S3 equals a local encode."""
        cache.put(KEY, VALUE)
        _, wire = cache.fetch(KEY)
        version = ARTIFACT_FORMATS[kind_of(KEY)]
        assert wire == encode_entry(KEY, VALUE, version, codec="zlib")

    def test_stale_format_is_a_miss(self, cache, monkeypatch):
        cache.put(KEY, VALUE)
        monkeypatch.setitem(ARTIFACT_FORMATS, "sg",
                            ARTIFACT_FORMATS["sg"] + 1)
        assert cache.get(KEY) is MISS
        assert cache.stats.stale == 1

    def test_unknown_kind_never_touches_the_wire(self, cache):
        assert cache.get(("nope", "a" * 64)) is MISS
        assert not cache.put(("nope", "a" * 64), 1)
        assert cache.stats.as_dict()["remote_misses"] == 0


class TestFailureModel:
    def test_dead_endpoint_degrades_to_miss_with_cooldown(self):
        cache = ObjectStoreArtifactCache(DEAD_SPEC, timeout=0.5,
                                         cooldown=60.0)
        assert cache.get(KEY) is MISS
        assert cache.stats.errors == 1
        # inside the cooldown window: no second connection attempt
        assert cache.get(KEY) is MISS
        assert cache.stats.errors == 1
        assert cache.stats.misses == 1
        assert not cache.put(KEY, VALUE)
        assert cache.stats.write_skips == 1

    def test_maintenance_on_dead_endpoint_is_a_noop(self):
        cache = ObjectStoreArtifactCache(DEAD_SPEC, timeout=0.5)
        assert cache.gc() == (0, 0)
        assert cache.clear() == (0, 0)
        assert not cache.healthy()
        report = cache.report()
        assert report.entries == 0

    def test_healthy_endpoint(self, cache):
        assert cache.healthy()


class TestTieredComposition:
    def test_backfill_writes_the_wire_bytes(self, tmp_path, spec):
        remote = ObjectStoreArtifactCache(spec)
        remote.put(KEY, VALUE)
        local = DiskArtifactCache(str(tmp_path / "local"))
        tiered = TieredStore(local, ObjectStoreArtifactCache(spec))
        assert tiered.get(KEY) == VALUE
        # the envelope was backfilled verbatim, then re-read locally
        assert local.stats.bytes_written > 0
        assert local.get(KEY) == VALUE


class TestMakeStore:
    def test_s3_spec_builds_the_object_store(self, spec):
        store = make_store(cache_s3=spec)
        assert isinstance(store, ObjectStoreArtifactCache)

    def test_dir_plus_s3_is_tiered(self, tmp_path, spec):
        store = make_store(cache_dir=str(tmp_path), cache_s3=spec)
        assert isinstance(store, TieredStore)
        assert isinstance(store.remote, ObjectStoreArtifactCache)

    def test_url_plus_s3_is_a_config_error(self, spec):
        with pytest.raises(StoreConfigError):
            make_store(cache_url="http://127.0.0.1:1", cache_s3=spec)

    def test_url_alone_still_builds_the_remote(self):
        store = make_store(cache_url="http://127.0.0.1:1")
        assert isinstance(store, RemoteArtifactCache)


def seed(fake, key, body, *, mtime=None):
    fake.store_object(BUCKET, key, body)
    if mtime is not None:
        with fake._lock:
            stored, _ = fake._objects[(BUCKET, key)]
            fake._objects[(BUCKET, key)] = (stored, mtime)


class TestMaintenance:
    def test_gc_reaps_only_store_owned_layout_roots(self, fake,
                                                    cache):
        cache.put(KEY, VALUE)
        seed(fake, f"{PREFIX}/v0/sg/{'a' * 64}", b"old layout")
        seed(fake, f"{PREFIX}/v99/sg/{'b' * 64}", b"newer binary")
        seed(fake, f"{PREFIX}/{STORE_LAYOUT}/mystery/{'c' * 64}",
             b"unknown kind")
        seed(fake, f"{PREFIX}/README", b"neighbour file")
        seed(fake, "elsewhere/v1/sg/x", b"other prefix")
        removed, freed = cache.gc()
        assert removed == 2                    # v0 + unknown kind
        assert freed == len(b"old layout") + len(b"unknown kind")
        assert fake.lookup(BUCKET, f"{PREFIX}/v99/sg/{'b' * 64}")
        assert fake.lookup(BUCKET, f"{PREFIX}/README")
        assert fake.lookup(BUCKET, "elsewhere/v1/sg/x")
        assert cache.get(KEY) == VALUE         # the live entry stayed

    def test_gc_max_age_uses_last_modified(self, fake, spec):
        import time
        cache = ObjectStoreArtifactCache(spec)
        cache.put(KEY, VALUE)
        stale_key = f"{PREFIX}/{STORE_LAYOUT}/sg/{'d' * 64}"
        seed(fake, stale_key, b"ancient", mtime=time.time() - 10_000)
        removed, _ = cache.gc(max_age_seconds=3600)
        assert removed == 1
        assert fake.lookup(BUCKET, stale_key) is None
        assert cache.get(KEY) == VALUE

    def test_gc_size_budget_keeps_newest(self, fake, spec):
        cache = ObjectStoreArtifactCache(spec)
        layout = f"{PREFIX}/{STORE_LAYOUT}/sg"
        seed(fake, f"{layout}/{'a' * 64}", b"x" * 100, mtime=100.0)
        seed(fake, f"{layout}/{'b' * 64}", b"x" * 100, mtime=200.0)
        seed(fake, f"{layout}/{'c' * 64}", b"x" * 100, mtime=300.0)
        removed, freed = cache.gc(max_bytes=250)
        assert removed == 1
        assert freed == 100
        assert fake.lookup(BUCKET, f"{layout}/{'a' * 64}") is None
        assert fake.lookup(BUCKET, f"{layout}/{'c' * 64}")

    def test_clear_spares_neighbour_objects(self, fake, cache):
        cache.put(KEY, VALUE)
        seed(fake, f"{PREFIX}/README", b"neighbour file")
        removed, freed = cache.clear()
        assert removed == 1
        assert freed > 0
        assert fake.lookup(BUCKET, f"{PREFIX}/README")
        assert cache.get(KEY) is MISS

    def test_report_counts_current_layout_only(self, fake, cache):
        cache.put(KEY, VALUE)
        cache.put(("map", "e" * 64, 2, "global", ()), {"area": 7})
        seed(fake, f"{PREFIX}/v0/sg/{'a' * 64}", b"old layout")
        report = cache.report()
        assert report.entries == 2
        assert set(report.by_kind) == {"sg", "map"}
        assert report.by_kind["sg"][0] == 1
        assert report.root == f"s3://{BUCKET}/{PREFIX}"
        # listings carry no headers: stored stands in for raw
        assert report.raw_bytes == report.bytes


class TestListingPagination:
    def test_small_pages_follow_continuation_tokens(self, fake, spec,
                                                    monkeypatch):
        monkeypatch.setattr("repro.dist.s3fake.MAX_KEYS_DEFAULT", 3)
        cache = ObjectStoreArtifactCache(spec)
        digests = [format(i, "x") * 64 for i in range(8)]
        for digest in digests:
            seed(fake, f"{PREFIX}/{STORE_LAYOUT}/sg/{digest[:64]}",
                 b"x" * 10)
        report = cache.report()
        assert report.entries == 8
        removed, _ = cache.clear()
        assert removed == 8


class _FlakyTransport:
    """Dies with TransportError after a set number of calls."""

    def __init__(self, inner, budget):
        self._inner = inner
        self._budget = budget

    def _spend(self):
        if self._budget <= 0:
            raise TransportError("flaky")
        self._budget -= 1

    def get(self, key):
        self._spend()
        return self._inner.get(key)

    def put(self, key, data):
        self._spend()
        self._inner.put(key, data)

    def delete(self, key):
        self._spend()
        self._inner.delete(key)

    def list(self, prefix):
        self._spend()
        return self._inner.list(prefix)


class TestTransportInjection:
    def test_transport_error_midway_stops_gc_cleanly(self, fake,
                                                     spec):
        from repro.dist.objectstore import _HttpTransport
        seed(fake, f"{PREFIX}/v0/sg/{'a' * 64}", b"ten bytes!")
        seed(fake, f"{PREFIX}/v0/sg/{'b' * 64}", b"ten bytes!")
        inner = _HttpTransport(fake.url, BUCKET)
        # budget 2: one list + one delete succeed, second delete dies
        cache = ObjectStoreArtifactCache(
            spec, transport=_FlakyTransport(inner, 2))
        removed, freed = cache.gc()
        assert removed == 1
        assert freed == 10


CONFIG = dict(libraries=(2,), with_siegel=False, keep_artifacts=False)


class TestPipelineOverObjectStore:
    """The acceptance path: shard workers warm-start through S3."""

    def test_cold_then_warm_through_the_fake(self, spec):
        config = PipelineConfig(cache_s3=spec, **CONFIG)
        cold = Pipeline(config).run("half")
        assert cold.stats["sg"] == 1
        assert cold.stats["remote_writes"] > 0
        warm = Pipeline(config).run("half")    # fresh memory cache
        assert warm.stats["sg"] == 0
        assert warm.stats["implementations"] == 0
        assert warm.stats["map"] == 0
        assert warm.stats["remote_hits"] > 0
        assert warm.row == cold.row

    def test_dead_object_store_never_fails_a_run(self):
        config = PipelineConfig(cache_s3=DEAD_SPEC, **CONFIG)
        record = Pipeline(config).run("half")
        assert record.stats["sg"] == 1         # computed locally
        assert record.stats["remote_hits"] == 0
        assert record.row is not None
