"""Job result retention: finished Table-1 rows spill into the
artifact store under the ``jobrow`` kind, memory eviction respects the
retention bound, and evicted or pre-restart jobs restore lazily on
``get`` — including for submit-side deduplication."""

import time

import pytest

from repro.bench_suite import benchmark
from repro.dist.jobs import (DONE, JOBROW_SCHEMA, JobParams, JobService,
                             job_id_of)
from repro.obs.metrics import use_registry
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.store import MISS, DiskArtifactCache
from repro.stg.writer import write_g

HALF_G = write_g(benchmark("half"))
HAZARD_G = write_g(benchmark("hazard"))
PARAMS = JobParams(libraries=(2,), with_siegel=False)


def wait_done(service, job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        current = service.get(job.id)
        if current is not None and current.state == DONE:
            return current
        time.sleep(0.01)
    pytest.fail(f"job {job.id} did not finish: {job.state}")


@pytest.fixture
def store(tmp_path):
    return DiskArtifactCache(str(tmp_path / "store"))


def run_one(service, g_text=HALF_G):
    job, created = service.submit(g_text, key="")
    assert created
    return wait_done(service, job)


class TestSpill:
    def test_finished_row_lands_in_store(self, store):
        with use_registry():
            service = JobService(cache=ArtifactCache(disk=store),
                                 workers=1).start()
            try:
                job = run_one(service)
            finally:
                service.stop()
        payload = store.get(("jobrow", job.id))
        assert payload is not MISS
        assert payload["schema"] == JOBROW_SCHEMA
        assert payload["id"] == job.id
        assert bytes(payload["result"]) == job.result
        assert payload["run_seconds"] > 0

    def test_storeless_service_keeps_everything(self):
        with use_registry():
            service = JobService(cache=None, workers=1, retain=1).start()
            try:
                first = run_one(service, HALF_G)
                second = run_one(service, HAZARD_G)
            finally:
                service.stop()
            # nothing to spill to, so nothing is ever evicted
            assert service.get(first.id) is first
            assert service.get(second.id) is second


class TestEvictAndRestore:
    def test_excess_jobs_evict_and_restore_lazily(self, store):
        with use_registry() as registry:
            service = JobService(cache=ArtifactCache(disk=store),
                                 workers=1, retain=1).start()
            try:
                first = run_one(service, HALF_G)
                run_one(service, HAZARD_G)
            finally:
                service.stop()
            # the older job left memory...
            with service._lock:
                assert first.id not in service._jobs
            # ...but get() rebuilds it from its spilled row
            restored = service.get(first.id)
            assert restored is not None
            assert restored.state == DONE
            assert restored.result == first.result
            assert restored._restored
            counter = registry.counter("si_jobs_total",
                                       labelnames=("event",))
            assert counter.value(event="evicted") >= 1
            assert counter.value(event="restored") == 1
        assert service.stats_payload()["restored"] == 1

    def test_restart_restores_and_dedupes(self, store):
        """A fresh service over the same store treats a spilled row as
        a finished job: get() serves it and submit() deduplicates
        against it instead of recomputing."""
        with use_registry():
            service = JobService(cache=ArtifactCache(disk=store),
                                 workers=1).start()
            try:
                job = run_one(service)
            finally:
                service.stop()
        with use_registry():
            reborn = JobService(cache=ArtifactCache(disk=store),
                                workers=1).start()
            try:
                resubmitted, created = reborn.submit(HALF_G, key="")
            finally:
                reborn.stop()
            assert not created
            assert resubmitted.state == DONE
            assert resubmitted.result == job.result
            assert reborn.stats_payload()["restored"] == 1

    def test_alien_row_is_a_miss(self, store):
        store.put(("jobrow", "deadbeef"), {"schema": "wrong/9",
                                           "id": "deadbeef"})
        with use_registry():
            service = JobService(cache=ArtifactCache(disk=store),
                                 workers=1)
            assert service.get("deadbeef") is None

    def test_torn_row_is_a_miss(self, store):
        job_id = job_id_of(HALF_G, PARAMS)
        store.put(("jobrow", job_id),
                  {"schema": JOBROW_SCHEMA, "id": job_id})
        with use_registry():
            service = JobService(cache=ArtifactCache(disk=store),
                                 workers=1)
            assert service.get(job_id) is None
