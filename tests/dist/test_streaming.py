"""Chunked/ranged transfer and codec negotiation over real sockets:
ranged GETs spanning chunk boundaries, streamed PUT bodies, concurrent
idempotent uploads, and v1-speaking clients against a v2 server."""

import pickle
import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.dist.envelope import (ARTIFACT_FORMATS, codec_of,
                                 digest_of, encode_entry, kind_of,
                                 read_header)
from repro.dist.remote import RemoteArtifactCache
from repro.dist.server import ArtifactServer

KEY = ("sg", "d" * 64)
#: compresses, but stays far larger than the tiny chunk size below
BIG_VALUE = {"trace": [f"state-{i:06d}" for i in range(5000)]}
VERSION = ARTIFACT_FORMATS["sg"]


@pytest.fixture
def server(tmp_path):
    with ArtifactServer(str(tmp_path / "served"),
                        port=0).start_background() as live:
        yield live


@pytest.fixture
def tiny_chunks(server):
    """A client forced into many ranged requests per entry."""
    return RemoteArtifactCache(server.url, chunk_bytes=512)


def entry_url(server, key):
    return f"{server.url}/artifact/{kind_of(key)}/{digest_of(key)}"


class TestRangedDownloads:
    def test_round_trip_spanning_many_chunks(self, server,
                                             tiny_chunks):
        assert tiny_chunks.put(KEY, BIG_VALUE)
        envelope_bytes = server.store.get_raw(kind_of(KEY),
                                              digest_of(KEY))
        assert len(envelope_bytes) > 512 * 3   # really multi-chunk
        fresh = RemoteArtifactCache(server.url, chunk_bytes=512)
        assert fresh.get(KEY) == BIG_VALUE
        # the client accounted the whole reassembled envelope
        assert fresh.stats.bytes_read == len(envelope_bytes)

    def test_206_carries_content_range(self, server, tiny_chunks):
        tiny_chunks.put(KEY, BIG_VALUE)
        total = len(server.store.get_raw(kind_of(KEY),
                                         digest_of(KEY)))
        request = urllib.request.Request(
            entry_url(server, KEY),
            headers={"Range": "bytes=10-29",
                     "X-SI-Codecs": "identity, zlib"})
        with urllib.request.urlopen(request, timeout=5) as response:
            assert response.status == 206
            assert (response.headers["Content-Range"]
                    == f"bytes 10-29/{total}")
            assert len(response.read()) == 20

    def test_ranged_chunks_reassemble_exactly(self, server,
                                              tiny_chunks):
        tiny_chunks.put(KEY, BIG_VALUE)
        whole = server.store.get_raw(kind_of(KEY), digest_of(KEY))
        pieces = []
        offset = 0
        while offset < len(whole):
            last = min(offset + 300, len(whole)) - 1
            request = urllib.request.Request(
                entry_url(server, KEY),
                headers={"Range": f"bytes={offset}-{last}",
                         "X-SI-Codecs": "identity, zlib"})
            with urllib.request.urlopen(request,
                                        timeout=5) as response:
                assert response.status == 206
                pieces.append(response.read())
            offset = last + 1
        assert b"".join(pieces) == whole

    def test_unsatisfiable_range_is_416(self, server, tiny_chunks):
        tiny_chunks.put(KEY, BIG_VALUE)
        total = len(server.store.get_raw(kind_of(KEY),
                                         digest_of(KEY)))
        request = urllib.request.Request(
            entry_url(server, KEY),
            headers={"Range": f"bytes={total + 10}-{total + 20}",
                     "X-SI-Codecs": "identity, zlib"})
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=5)
        assert caught.value.code == 416
        assert (caught.value.headers["Content-Range"]
                == f"bytes */{total}")
        caught.value.close()

    def test_multi_range_served_as_full_200(self, server,
                                            tiny_chunks):
        """RFC 7233 allows ignoring ranges it will not serve."""
        tiny_chunks.put(KEY, BIG_VALUE)
        whole = server.store.get_raw(kind_of(KEY), digest_of(KEY))
        request = urllib.request.Request(
            entry_url(server, KEY),
            headers={"Range": "bytes=0-1, 5-9",
                     "X-SI-Codecs": "identity, zlib"})
        with urllib.request.urlopen(request, timeout=5) as response:
            assert response.status == 200
            assert response.read() == whole


class _WholeBody200Handler(BaseHTTPRequestHandler):
    """A pre-range server: ignores Range, always replies 200 + body."""

    protocol_version = "HTTP/1.1"

    def do_GET(self):
        body = self.server.body
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):
        pass


class TestOldServerInterop:
    def test_client_accepts_whole_body_200(self):
        """A ranged client against a pre-range server still works:
        the 200 whole-body reply is taken as-is."""
        data = encode_entry(KEY, BIG_VALUE, VERSION, codec="zlib")
        httpd = ThreadingHTTPServer(("127.0.0.1", 0),
                                    _WholeBody200Handler)
        httpd.body = data
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            host, port = httpd.server_address[:2]
            client = RemoteArtifactCache(f"http://{host}:{port}",
                                         chunk_bytes=512)
            assert client.get(KEY) == BIG_VALUE
            assert client.stats.hits == 1
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)


class TestCodecNegotiation:
    def test_v2_client_receives_the_compressed_envelope(self, server):
        client = RemoteArtifactCache(server.url)
        client.put(KEY, BIG_VALUE)
        stored = server.store.get_raw(kind_of(KEY), digest_of(KEY))
        assert codec_of(stored) == "zlib"
        request = urllib.request.Request(
            entry_url(server, KEY),
            headers={"X-SI-Codecs": "identity, zlib"})
        with urllib.request.urlopen(request, timeout=5) as response:
            body = response.read()
            assert response.headers["X-SI-Codec"] == "zlib"
        assert body == stored

    def test_v1_client_gets_identity_transcode(self, server):
        """Regression: a client that predates the codec stamp sends no
        X-SI-Codecs header and must receive a raw-pickle envelope it
        can read with plain pickle.loads."""
        RemoteArtifactCache(server.url).put(KEY, BIG_VALUE)
        request = urllib.request.Request(entry_url(server, KEY))
        with urllib.request.urlopen(request, timeout=5) as response:
            body = response.read()
            assert response.headers["X-SI-Codec"] == "identity"
        # decode exactly like the pre-codec client did: restricted
        # header check, then pickle.loads of the remainder
        header, offset = read_header(body)
        assert header["format"] == VERSION
        assert header["key"] == repr(KEY)
        assert pickle.loads(body[offset:]) == BIG_VALUE

    def test_v1_client_ranged_request_slices_the_transcode(
            self, server):
        """Transcoding is deterministic, so an old chunking client
        sees a consistent byte stream across its ranged requests."""
        RemoteArtifactCache(server.url).put(KEY, BIG_VALUE)
        whole = urllib.request.urlopen(
            urllib.request.Request(entry_url(server, KEY)),
            timeout=5).read()
        pieces = []
        offset = 0
        while offset < len(whole):
            last = min(offset + 1000, len(whole)) - 1
            request = urllib.request.Request(
                entry_url(server, KEY),
                headers={"Range": f"bytes={offset}-{last}"})
            with urllib.request.urlopen(request,
                                        timeout=5) as response:
                assert response.status == 206
                assert (response.headers["Content-Range"]
                        == f"bytes {offset}-{last}/{len(whole)}")
                pieces.append(response.read())
            offset = last + 1
        assert b"".join(pieces) == whole


class TestStreamedPuts:
    def test_uploaded_bytes_land_verbatim(self, server):
        client = RemoteArtifactCache(server.url)
        data = encode_entry(KEY, BIG_VALUE, VERSION, codec="zlib")
        assert client.put_raw(kind_of(KEY), digest_of(KEY), data)
        assert server.store.get_raw(kind_of(KEY),
                                    digest_of(KEY)) == data

    def test_concurrent_idempotent_puts_exact_telemetry(self, server):
        """Many threads PUT the same compressed digest: every upload
        succeeds (idempotent), the entry is never torn, and both ends
        count exactly one write per request."""
        threads = 8
        client = RemoteArtifactCache(server.url)
        data = encode_entry(KEY, BIG_VALUE, VERSION, codec="zlib")
        kind, digest = kind_of(KEY), digest_of(KEY)
        barrier = threading.Barrier(threads)
        results = []

        def upload():
            barrier.wait()
            results.append(client.put_raw(kind, digest, data))

        workers = [threading.Thread(target=upload)
                   for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=30)
        assert results == [True] * threads
        assert client.stats.writes == threads
        assert client.stats.bytes_written == threads * len(data)
        assert client.stats.errors == 0
        assert server.store.stats.writes == threads
        assert server.store.stats.bytes_written == threads * len(data)
        assert server.store.stats.write_skips == 0
        assert server.store.get_raw(kind, digest) == data
        # no stray temp files survived the race
        root = server.store.root
        import os
        stray = [name for _, _, names in os.walk(root)
                 for name in names if name.startswith(".tmp-")]
        assert stray == []
