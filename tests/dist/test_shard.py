"""Deterministic sharding and the validating merge: partition
properties, shard-file round-trips, and CLI-level byte-identity of
``--shard``+``--merge`` against the unsharded report."""

import json

import pytest

from repro.bench_suite import benchmark_names
from repro.cli import main
from repro.dist.shard import (SHARD_SCHEMA, merge_shards, parse_shard,
                              read_shard, shard_index, shard_names,
                              shard_payload, write_shard)
from repro.errors import ShardError
from repro.report import Table1Row, render_report


class TestParseShard:
    @pytest.mark.parametrize("spec,expected", [
        ("1/1", (1, 1)), ("2/4", (2, 4)), (" 3/3 ", (3, 3)),
    ])
    def test_valid(self, spec, expected):
        assert parse_shard(spec) == expected

    @pytest.mark.parametrize("spec", [
        "", "1", "0/4", "5/4", "1/0", "-1/4", "a/b", "1/2/3",
    ])
    def test_invalid(self, spec):
        with pytest.raises(ShardError):
            parse_shard(spec)


class TestPartition:
    def test_shards_are_disjoint_and_complete(self):
        names = benchmark_names()
        parts = [shard_names(names, i, 4) for i in (1, 2, 3, 4)]
        flat = [name for part in parts for name in part]
        assert sorted(flat) == sorted(names)
        assert len(flat) == len(set(flat))

    def test_partition_ignores_list_order(self):
        """The shard a circuit lands in depends on its *name* only —
        machines sharding differently-ordered lists still agree."""
        names = benchmark_names()
        shuffled = list(reversed(names))
        assert (set(shard_names(names, 1, 3))
                == set(shard_names(shuffled, 1, 3)))

    def test_partition_is_stable_across_processes(self):
        """sha256, not Python's salted hash: the assignment is a fixed
        function of the name."""
        assert shard_index("half", 2) == 1
        assert shard_index("dff", 2) == 2

    def test_single_shard_is_everything(self):
        names = benchmark_names()
        assert shard_names(names, 1, 1) == names

    def test_subset_preserves_input_order(self):
        names = ["dff", "half", "nowick", "hazard"]
        assert shard_names(names, 2, 2) == ["dff", "nowick"]


def _row(name, inserted=0):
    return Table1Row(name=name, histogram=[1, 0, 0, 0, 0, 0],
                     inserted={2: inserted}, siegel_2lit=None,
                     non_si_cost=(3, 1), si_cost=(4, 2),
                     siegel_ran=False)


class TestShardFiles:
    def test_row_json_round_trip(self):
        row = Table1Row(name="x", histogram=[1, 2, 0, 0, 0, 3],
                        inserted={2: 1, 3: None}, siegel_2lit=2,
                        non_si_cost=(10, 4), si_cost=None,
                        siegel_ran=True, csc_signals=1)
        assert Table1Row.from_json(
            json.loads(json.dumps(row.to_json()))) == row

    def test_write_read_round_trip(self, tmp_path):
        payload = shard_payload(["half", "dff"], (1, 2), (2,), False,
                                None, [_row("half")], [])
        path = str(tmp_path / "s.json")
        write_shard(path, payload)
        assert read_shard(path) == json.loads(json.dumps(payload))

    def test_read_rejects_non_shard_files(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(ShardError):
            read_shard(str(path))
        path.write_text("not json")
        with pytest.raises(ShardError):
            read_shard(str(path))

    def test_read_rejects_truncated_payloads(self, tmp_path):
        """A valid schema stamp alone is not a shard file: missing
        sections must be a clean ShardError, never a KeyError out of
        the merge."""
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"schema": SHARD_SCHEMA}))
        with pytest.raises(ShardError, match="incomplete"):
            read_shard(str(path))
        payload = shard_payload(["half"], (1, 1), (2,), False, None,
                                [], [])
        payload["shard"] = "1/1"               # wrong shape
        path.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="malformed shard"):
            read_shard(str(path))
        payload["shard"] = [0, 0]              # would divide by zero
        path.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="malformed shard"):
            read_shard(str(path))

    def test_read_rejects_future_schema(self, tmp_path):
        payload = shard_payload(["half"], (1, 1), (2,), False, None,
                                [], [])
        payload["schema"] = SHARD_SCHEMA + 1
        path = str(tmp_path / "s.json")
        write_shard(path, payload)
        with pytest.raises(ShardError, match="schema"):
            read_shard(str(path))


class TestMerge:
    NAMES = ["half", "dff"]          # half -> shard 1, dff -> shard 2

    def _payloads(self):
        return [
            shard_payload(self.NAMES, (1, 2), (2,), False, None,
                          [_row("half")], []),
            shard_payload(self.NAMES, (2, 2), (2,), False, None,
                          [_row("dff")], []),
        ]

    def test_merge_reassembles_in_suite_order(self):
        # shard 2 first: merge must not care about file order
        payloads = list(reversed(self._payloads()))
        rows, failures, text = merge_shards(payloads)
        assert [row.name for row in rows] == self.NAMES
        assert failures == []
        assert text == render_report(rows, [])

    def test_merge_carries_failures_in_order(self):
        payloads = self._payloads()
        payloads[1]["rows"] = []
        payloads[1]["failures"] = [["dff", "MappingError: boom"]]
        rows, failures, text = merge_shards(payloads)
        assert failures == [("dff", "MappingError: boom")]
        assert "dff: ERROR MappingError: boom" in text

    def test_merge_refuses_missing_shard(self):
        with pytest.raises(ShardError, match="missing shard"):
            merge_shards(self._payloads()[:1])

    def test_merge_refuses_duplicate_shard(self):
        first, _ = self._payloads()
        with pytest.raises(ShardError, match="duplicate"):
            merge_shards([first, first])

    def test_merge_refuses_mixed_configurations(self):
        first, second = self._payloads()
        second["libraries"] = [2, 3]
        with pytest.raises(ShardError, match="libraries"):
            merge_shards([first, second])
        first, second = self._payloads()
        second["mapper"] = "MapperConfig(solve_csc=True)"
        with pytest.raises(ShardError, match="mapper"):
            merge_shards([first, second])

    def test_merge_refuses_rows_outside_the_partition(self):
        first, second = self._payloads()
        second["rows"] = [_row("half").to_json()]    # shard 1's row
        with pytest.raises(ShardError, match="not in its partition"):
            merge_shards([first, second])

    def test_merge_refuses_unaccounted_circuits(self):
        first, second = self._payloads()
        second["rows"] = []
        with pytest.raises(ShardError, match="accounted"):
            merge_shards([first, second])

    def test_merge_refuses_nothing(self):
        with pytest.raises(ShardError):
            merge_shards([])


class TestMergeClaimed:
    """Work-stealing shards: the recorded claims replace the static
    hash partition as the merge's row-validation source."""

    NAMES = ["half", "dff", "hazard"]

    def _payloads(self):
        # deliberately NOT the hash partition: worker 1 stole two
        return [
            shard_payload(self.NAMES, (1, 2), (2,), False, None,
                          [_row("half"), _row("hazard")], [],
                          claimed=["half", "hazard"]),
            shard_payload(self.NAMES, (2, 2), (2,), False, None,
                          [_row("dff")], [], claimed=["dff"]),
        ]

    def test_claimed_partition_merges(self):
        rows, failures, text = merge_shards(self._payloads())
        assert [row.name for row in rows] == self.NAMES
        assert failures == []
        assert text == render_report(rows, [])

    def test_rows_validated_against_claims(self):
        first, second = self._payloads()
        second["rows"].append(_row("hazard").to_json())  # not its claim
        with pytest.raises(ShardError, match="not in its partition"):
            merge_shards([first, second])

    def test_overlapping_claims_refused(self):
        first, second = self._payloads()
        second["claimed"].append("hazard")
        with pytest.raises(ShardError, match="claimed by both"):
            merge_shards([first, second])

    def test_claim_of_unknown_circuit_refused(self):
        first, second = self._payloads()
        second["claimed"].append("mystery")
        with pytest.raises(ShardError, match="not in the circuit"):
            merge_shards([first, second])

    def test_mixed_static_and_claimed_refused(self):
        first, second = self._payloads()
        del second["claimed"]
        with pytest.raises(ShardError, match="work stealing"):
            merge_shards([first, second])

    def test_malformed_claimed_list_refused(self):
        first, second = self._payloads()
        second["claimed"] = "dff"
        with pytest.raises(ShardError, match="malformed claimed"):
            merge_shards([first, second])

    def test_unclaimed_circuit_is_unaccounted(self):
        first, second = self._payloads()
        first["claimed"] = ["half"]
        first["rows"] = [_row("half").to_json()]
        with pytest.raises(ShardError, match="accounted"):
            merge_shards([first, second])


def _report_lines(text):
    """The report body: progress lines stripped, trailing noise kept."""
    return [line for line in text.splitlines()
            if not line.startswith("... ")]


class TestCliShardMerge:
    """The acceptance criterion, end to end through ``main``: two
    shards merged == the unsharded run, byte for byte."""

    NAMES = ["half", "hazard", "dff"]     # 2 in shard 1, 1 in shard 2

    def test_two_shard_merge_is_byte_identical(self, tmp_path,
                                               capsys):
        base = ["report", *self.NAMES, "-k", "2", "--no-siegel",
                "-j", "1"]
        assert main(base) == 0
        single = _report_lines(capsys.readouterr().out)

        s1 = str(tmp_path / "s1.json")
        s2 = str(tmp_path / "s2.json")
        assert main(base + ["--shard", "1/2", "--out", s1]) == 0
        assert main(base + ["--shard", "2/2", "--out", s2]) == 0
        capsys.readouterr()
        assert main(["report", "--merge", s1, s2]) == 0
        merged = _report_lines(capsys.readouterr().out)
        assert merged == single

    def test_shard_run_prints_its_subset_only(self, tmp_path, capsys):
        out = str(tmp_path / "s.json")
        assert main(["report", *self.NAMES, "-k", "2", "--no-siegel",
                     "-j", "1", "--shard", "2/2", "--out", out]) == 0
        captured = capsys.readouterr()
        assert "dff" in captured.out
        assert "hazard" not in captured.out
        assert "-> " + out in captured.err
        payload = read_shard(out)
        assert payload["names"] == self.NAMES
        assert [row["name"] for row in payload["rows"]] == ["dff"]

    def test_merge_rejects_extra_arguments(self, tmp_path, capsys):
        assert main(["report", "half", "--merge", "x.json"]) == 2
        assert "--merge" in capsys.readouterr().err
        # --out is shard-file output; the merged report goes to stdout
        assert main(["report", "--merge", "x.json",
                     "--out", "y.txt"]) == 2
        assert "--merge" in capsys.readouterr().err
        # battery flags cannot re-render recorded shards
        assert main(["report", "--merge", "x.json", "-k", "3"]) == 2
        assert "configuration" in capsys.readouterr().err

    def test_merge_rejects_malformed_rows(self, tmp_path, capsys):
        payload = shard_payload(["half"], (1, 1), (2,), False, None,
                                [], [])
        payload["rows"] = [{"name": "half"}]   # truncated row object
        path = str(tmp_path / "s.json")
        write_shard(path, payload)
        assert main(["report", "--merge", path]) == 2
        assert "malformed row" in capsys.readouterr().err

    def test_merge_error_is_a_clean_exit(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["report", "--merge", missing]) == 2
        assert "cannot read shard file" in capsys.readouterr().err

    def test_bad_shard_spec_is_a_clean_exit(self, capsys):
        assert main(["report", "half", "--shard", "9/2"]) == 2
        assert "bad shard spec" in capsys.readouterr().err

    def test_out_without_shard_is_refused(self, tmp_path, capsys):
        """--out is shard-file output; silently ignoring it would cost
        the user a full battery with nothing written."""
        out = str(tmp_path / "t.json")
        assert main(["report", "half", "--out", out]) == 2
        assert "--shard" in capsys.readouterr().err

    def test_unwritable_out_is_a_clean_exit(self, capsys):
        assert main(["report", "half", "-k", "2", "--no-siegel",
                     "-j", "1", "--shard", "1/1",
                     "--out", "/no/such/dir/s.json"]) == 2
        assert "cannot write shard file" in capsys.readouterr().err
