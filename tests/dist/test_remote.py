"""The remote artifact-store backend, the serve daemon, and the
tiered composite: round-trips over real sockets, the degrade-to-miss
failure model, and warm-started pipelines through a live server."""

import threading
import urllib.error
import urllib.request

import pytest

from repro.dist.remote import RemoteArtifactCache, TieredStore
from repro.dist.server import ArtifactServer
from repro.pipeline import DiskArtifactCache, Pipeline, PipelineConfig
from repro.pipeline.store import (ARTIFACT_FORMATS, MISS, digest_of,
                                  encode_entry, kind_of)

KEY = ("sg", "f" * 64)
OTHER = ("map", "e" * 64, 2, "global", ())

#: nothing listens here (port 1 is privileged and unused)
DEAD_URL = "http://127.0.0.1:1"


@pytest.fixture
def server(tmp_path):
    """A live serve daemon over a fresh store, on an ephemeral port."""
    with ArtifactServer(str(tmp_path / "served"),
                        port=0).start_background() as live:
        yield live


@pytest.fixture
def remote(server):
    return RemoteArtifactCache(server.url)


class TestRemoteRoundTrip:
    def test_round_trip_against_live_server(self, remote):
        assert remote.get(KEY) is MISS
        assert remote.stats.misses == 1
        assert remote.put(KEY, {"value": 42})
        assert remote.stats.writes == 1
        assert remote.stats.bytes_written > 0
        assert remote.get(KEY) == {"value": 42}
        assert remote.stats.hits == 1
        assert remote.stats.bytes_read > 0

    def test_entries_visible_across_clients(self, server, remote):
        remote.put(KEY, "artifact")
        fresh = RemoteArtifactCache(server.url)
        assert fresh.get(KEY) == "artifact"

    def test_distinct_keys_do_not_alias(self, remote):
        remote.put(KEY, "a")
        remote.put(OTHER, "b")
        assert remote.get(KEY) == "a"
        assert remote.get(OTHER) == "b"

    def test_unknown_kind_never_travels(self, remote):
        assert not remote.put(("stg", "a" * 64), "raw")
        assert remote.get(("stg", "a" * 64)) is MISS
        assert remote.stats.writes == 0

    def test_unpicklable_value_is_skipped(self, remote):
        assert not remote.put(KEY, threading.Lock())
        assert remote.stats.write_skips == 1

    def test_format_stamp_checked_client_side(self, remote,
                                              monkeypatch):
        """A downloaded entry with yesterday's schema is a miss — the
        server does not know (or care) what version clients speak."""
        remote.put(KEY, "artifact")
        monkeypatch.setitem(ARTIFACT_FORMATS, "sg",
                            ARTIFACT_FORMATS["sg"] + 1)
        assert remote.get(KEY) is MISS
        assert remote.stats.stale == 1

    def test_report_reflects_server_inventory(self, remote):
        remote.put(KEY, "a")
        remote.put(OTHER, "b")
        report = remote.report()
        assert report.entries == 2
        assert set(report.by_kind) == {"sg", "map"}
        assert report.root == remote.base_url

    def test_remote_gc_and_clear(self, remote):
        remote.put(KEY, "a")
        assert remote.gc() == (0, 0)           # healthy entry survives
        removed, freed = remote.clear()
        assert removed == 1 and freed > 0
        assert remote.get(KEY) is MISS


class TestDeadServer:
    """A dead or dying server costs misses, never a failed run."""

    def test_get_degrades_to_miss(self):
        dead = RemoteArtifactCache(DEAD_URL, cooldown=0)
        assert dead.get(KEY) is MISS
        assert dead.stats.errors == 1

    def test_put_degrades_to_skip(self):
        dead = RemoteArtifactCache(DEAD_URL, cooldown=0)
        assert not dead.put(KEY, "value")
        assert dead.stats.write_skips == 1

    def test_cooldown_stops_hammering(self):
        dead = RemoteArtifactCache(DEAD_URL, cooldown=3600)
        assert dead.get(KEY) is MISS           # one real attempt
        assert dead.get(KEY) is MISS           # skipped: cooldown
        assert not dead.put(KEY, "v")          # skipped: cooldown
        assert dead.stats.errors == 1          # only the first call
        assert dead.stats.misses == 1
        assert dead.stats.write_skips == 1

    @staticmethod
    def _raising_5xx(client, code):
        import io

        def boom(method, path, data=None, headers=None):
            raise urllib.error.HTTPError("url", code, "backend down",
                                         {}, io.BytesIO())
        client._request = boom
        client._open = boom

    def test_5xx_opens_the_cooldown(self):
        """A broken backend behind a live proxy must back off exactly
        like a dead socket — not one failed request per artifact."""
        client = RemoteArtifactCache(DEAD_URL, cooldown=3600)
        self._raising_5xx(client, 503)
        assert client.get(KEY) is MISS
        assert client.stats.errors == 1
        assert client.get(KEY) is MISS         # cooldown: no request
        assert client.stats.errors == 1
        assert client.stats.misses == 1

    def test_5xx_on_put_counts_as_error(self):
        """A 507 (full store) is operator-visible in remote_errors,
        unlike a benign refused upload."""
        client = RemoteArtifactCache(DEAD_URL, cooldown=3600)
        self._raising_5xx(client, 507)
        assert not client.put(KEY, "value")
        assert client.stats.errors == 1
        assert client.stats.write_skips == 1
        assert not client._available()         # backing off

    def test_maintenance_degrades_to_zero(self):
        dead = RemoteArtifactCache(DEAD_URL, cooldown=0)
        assert dead.gc() == (0, 0)
        assert dead.clear() == (0, 0)
        assert dead.report().entries == 0
        assert not dead.healthy()

    def test_server_death_mid_run_degrades(self, tmp_path):
        live = ArtifactServer(str(tmp_path / "s"),
                              port=0).start_background()
        client = RemoteArtifactCache(live.url, cooldown=0)
        client.put(KEY, "value")
        live.stop()
        assert client.get(KEY) is MISS         # dead now: miss
        assert client.stats.errors >= 1


class TestServerProtocol:
    def test_healthz(self, server):
        with urllib.request.urlopen(server.url + "/healthz") as reply:
            assert reply.status == 200

    def test_head_artifact(self, server, remote):
        remote.put(KEY, "artifact")
        request = urllib.request.Request(
            f"{server.url}/artifact/sg/{digest_of(KEY)}",
            method="HEAD")
        with urllib.request.urlopen(request) as reply:
            assert reply.status == 200
            assert int(reply.headers["Content-Length"]) > 0

    def test_head_missing_artifact_404(self, server):
        request = urllib.request.Request(
            f"{server.url}/artifact/sg/{'0' * 64}", method="HEAD")
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request)
        assert caught.value.code == 404

    @pytest.mark.parametrize("path", [
        "/artifact/sg/short",                  # not a sha256
        "/artifact/../../etc/passwd",          # traversal shape
        "/artifact/sg/" + "Z" * 64,            # not lowercase hex
        "/nonsense",
    ])
    def test_malformed_paths_are_404(self, server, path):
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(server.url + path)
        assert caught.value.code == 404

    def test_oversize_put_gets_a_clean_413(self, server, monkeypatch):
        """The body is drained so the 413 reaches a mid-upload client
        as an HTTP reply (a skip), not a broken pipe (a 'dead server'
        that would open the cooldown)."""
        import repro.dist.server as server_module
        monkeypatch.setattr(server_module, "MAX_ENTRY_BYTES", 1024)
        request = urllib.request.Request(
            f"{server.url}/artifact/sg/{'3' * 64}",
            data=b"x" * 2048, method="PUT")
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request)
        assert caught.value.code == 413

    def test_put_garbage_is_rejected(self, server):
        """Uploads must at least carry a well-formed envelope header —
        the server never stores bytes it could not even inventory."""
        request = urllib.request.Request(
            f"{server.url}/artifact/sg/{'1' * 64}",
            data=b"not an envelope", method="PUT")
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request)
        assert caught.value.code == 400

    def test_keepalive_connection_reuse_on_success(self, server):
        """One HTTP/1.1 connection, PUT then GET: the success path
        consumes the body fully, so the socket stays usable."""
        import http.client
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=5)
        data = encode_entry(KEY, "value", ARTIFACT_FORMATS["sg"])
        path = f"/artifact/sg/{digest_of(KEY)}"
        connection.request("PUT", path, body=data)
        reply = connection.getresponse()
        reply.read()
        assert reply.status == 204
        connection.request("GET", path)        # same socket
        reply = connection.getresponse()
        assert reply.status == 200
        assert reply.read() == data
        connection.close()

    def test_rejected_put_closes_the_connection(self, server):
        """A reply sent *before* the body is consumed (bad path here)
        must close the connection — the unread body bytes would
        otherwise be parsed as the next request."""
        import http.client
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=5)
        connection.request("PUT", "/artifact/not-a-digest",
                           body=b"x" * 1024)
        reply = connection.getresponse()
        assert reply.status == 404
        assert reply.getheader("Connection") == "close"
        connection.close()

    def test_envelope_rejection_keeps_the_connection(self, server):
        """The 400 for a bad envelope comes after the body was fully
        read: the connection stays clean and reusable."""
        import http.client
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=5)
        connection.request("PUT", "/artifact/sg/" + "1" * 64,
                           body=b"not an envelope")
        reply = connection.getresponse()
        reply.read()
        assert reply.status == 400
        assert reply.getheader("Connection") != "close"
        connection.request("GET", "/healthz")  # same socket still works
        reply = connection.getresponse()
        assert reply.status == 200
        connection.close()

    def test_concurrent_puts_are_idempotent(self, server):
        """Many threads PUT the same entry: every request succeeds,
        exactly one complete entry results."""
        data = encode_entry(KEY, "payload" * 100,
                            ARTIFACT_FORMATS["sg"])
        url = f"{server.url}/artifact/{kind_of(KEY)}/{digest_of(KEY)}"
        failures = []

        def upload():
            request = urllib.request.Request(url, data=data,
                                             method="PUT")
            try:
                with urllib.request.urlopen(request) as reply:
                    if reply.status != 204:
                        failures.append(reply.status)
            except Exception as error:   # pragma: no cover - fail loud
                failures.append(error)

        threads = [threading.Thread(target=upload) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert server.store.report().entries == 1
        client = RemoteArtifactCache(server.url)
        assert client.get(KEY) == "payload" * 100


class TestTieredStore:
    def _tiers(self, tmp_path, server):
        local = DiskArtifactCache(str(tmp_path / "local"))
        remote = RemoteArtifactCache(server.url)
        return TieredStore(local, remote), local, remote

    def test_put_writes_through_both_layers(self, tmp_path, server):
        tiered, local, remote = self._tiers(tmp_path, server)
        assert tiered.put(KEY, "artifact")
        assert local.stats.writes == 1
        assert remote.stats.writes == 1
        # both layers can answer alone
        assert DiskArtifactCache(local.root).get(KEY) == "artifact"
        assert RemoteArtifactCache(server.url).get(KEY) == "artifact"

    def test_local_hit_never_touches_network(self, tmp_path, server):
        tiered, local, remote = self._tiers(tmp_path, server)
        tiered.put(KEY, "artifact")
        assert tiered.get(KEY) == "artifact"
        assert local.stats.hits == 1
        assert remote.stats.hits == 0

    def test_remote_hit_backfills_local(self, tmp_path, server):
        RemoteArtifactCache(server.url).put(KEY, "artifact")
        tiered, local, remote = self._tiers(tmp_path, server)
        assert tiered.get(KEY) == "artifact"   # came from the server
        assert remote.stats.hits == 1
        assert tiered.get(KEY) == "artifact"   # now local
        assert local.stats.hits == 1
        assert remote.stats.hits == 1          # unchanged

    def test_backfill_reuses_the_wire_bytes(self, tmp_path, server):
        """The write-back stores the downloaded envelope as-is — no
        second pickling of the payload."""
        RemoteArtifactCache(server.url).put(KEY, "artifact" * 50)
        tiered, local, remote = self._tiers(tmp_path, server)
        assert tiered.get(KEY) == "artifact" * 50
        assert local.stats.bytes_written == remote.stats.bytes_read
        assert local.stats.write_skips == 0

    def test_put_survives_dead_remote(self, tmp_path):
        local = DiskArtifactCache(str(tmp_path / "local"))
        tiered = TieredStore(local,
                             RemoteArtifactCache(DEAD_URL, cooldown=0))
        assert tiered.put(KEY, "artifact")     # local succeeded
        assert tiered.get(KEY) == "artifact"

    def test_telemetry_merges_both_layers(self, tmp_path, server):
        tiered, _, _ = self._tiers(tmp_path, server)
        tiered.put(KEY, "artifact")
        counters = tiered.telemetry()
        assert counters["disk_writes"] == 1
        assert counters["remote_writes"] == 1

    def test_put_encodes_once_for_both_layers(self, tmp_path, server):
        """One pickling feeds both layers: the uploaded bytes are the
        local entry's bytes."""
        tiered, local, remote = self._tiers(tmp_path, server)
        assert tiered.put(KEY, "artifact" * 50)
        assert (local.stats.bytes_written
                == remote.stats.bytes_written)

    def test_unpicklable_value_skips_both_layers(self, tmp_path,
                                                 server):
        tiered, local, remote = self._tiers(tmp_path, server)
        assert not tiered.put(KEY, threading.Lock())
        assert local.stats.write_skips == 1
        assert remote.stats.write_skips == 1
        assert local.stats.writes == 0
        assert remote.stats.writes == 0


def test_remote_counters_match_remote_stats():
    """pipeline.store zero-fills remote telemetry from a static list;
    it must stay in lockstep with RemoteStats.as_dict()."""
    from repro.dist.remote import RemoteStats
    from repro.pipeline.store import REMOTE_COUNTERS, empty_telemetry
    assert set(REMOTE_COUNTERS) == set(RemoteStats().as_dict())
    assert set(empty_telemetry()) >= set(REMOTE_COUNTERS)


def test_serve_bind_failure_is_a_clean_cli_error(tmp_path, server,
                                                 capsys):
    """A taken port is an operational error (exit 2), not a
    traceback."""
    from repro.cli import main
    host, port = server.server_address[:2]
    assert main(["serve", "--cache-dir", str(tmp_path / "x"),
                 "--host", host, "--port", str(port)]) == 2
    assert "cannot serve" in capsys.readouterr().err


CONFIG = dict(libraries=(2,), with_siegel=False, keep_artifacts=False)


class TestPipelineOverRemote:
    """The acceptance path: workers warm-start through the server."""

    def test_cold_then_warm_through_server(self, server):
        config = PipelineConfig(cache_url=server.url, **CONFIG)
        cold = Pipeline(config).run("half")
        assert cold.stats["sg"] == 1
        assert cold.stats["remote_writes"] > 0
        warm = Pipeline(config).run("half")    # fresh memory cache
        assert warm.stats["sg"] == 0
        assert warm.stats["implementations"] == 0
        assert warm.stats["map"] == 0
        assert warm.stats["remote_hits"] > 0
        assert warm.row == cold.row

    def test_tiered_worker_rereads_locally(self, tmp_path, server):
        config = PipelineConfig(cache_url=server.url,
                                cache_dir=str(tmp_path / "w1"),
                                **CONFIG)
        cold = Pipeline(config).run("half")
        assert cold.stats["remote_writes"] > 0
        # a different machine: no local store yet, pulls remotely and
        # backfills its own disk
        other = PipelineConfig(cache_url=server.url,
                               cache_dir=str(tmp_path / "w2"),
                               **CONFIG)
        warm = Pipeline(other).run("half")
        assert warm.stats["sg"] == 0
        assert warm.stats["remote_hits"] > 0
        # third run on that machine: all local now
        again = Pipeline(PipelineConfig(
            cache_url=DEAD_URL, cache_dir=str(tmp_path / "w2"),
            **CONFIG)).run("half")
        assert again.stats["sg"] == 0
        assert again.stats["disk_hits"] > 0
        assert again.stats["remote_hits"] == 0
        assert again.row == cold.row

    def test_dead_server_never_fails_a_run(self):
        config = PipelineConfig(cache_url=DEAD_URL, **CONFIG)
        record = Pipeline(config).run("half")
        assert record.stats["sg"] == 1         # computed locally
        assert record.stats["remote_hits"] == 0
        assert record.row is not None
