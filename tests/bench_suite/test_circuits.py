"""Validation of the 32-benchmark reconstruction suite.

Every circuit must be a *valid specification*: consistent encoding,
deterministic, commutative, output-persistent, CSC — otherwise the
Table-1 experiments would be measuring garbage.
"""

import pytest

from repro.bench_suite import benchmark, benchmark_names, load_all
from repro.sg.properties import check_speed_independence
from repro.sg.reachability import state_graph_of
from repro.stg.parser import parse_g
from repro.stg.writer import write_g
from repro.synthesis.cover import synthesize_all
from repro.synthesis.netlist import Netlist

ALL_NAMES = benchmark_names()


def test_suite_has_32_circuits():
    assert len(ALL_NAMES) == 32


def test_unknown_name_rejected():
    with pytest.raises(KeyError):
        benchmark("nonexistent")


def test_benchmark_returns_fresh_copies():
    first = benchmark("half")
    second = benchmark("half")
    assert first is not second
    first.add_output("scratch")
    assert "scratch" not in second.signals


@pytest.mark.parametrize("name", ALL_NAMES)
def test_circuit_is_valid_specification(name):
    sg = state_graph_of(benchmark(name))
    report = check_speed_independence(sg)
    assert report.implementable, report.all_violations()[:3]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_circuit_roundtrips_through_g_format(name):
    stg = benchmark(name)
    again = parse_g(write_g(stg), name=name)
    sg1 = state_graph_of(stg)
    sg2 = state_graph_of(again)
    assert len(sg1) == len(sg2)
    assert sg1.inputs == sg2.inputs
    assert sg1.outputs == sg2.outputs


@pytest.mark.parametrize("name", [
    "chu133", "converta", "dff", "half", "hazard", "nowick",
    "rcv-setup", "rpdft", "vbe5b", "vbe5c", "vbe6a", "trimos-send",
])
def test_small_circuit_synthesizable(name):
    """Monotonous-cover synthesis succeeds and produces a netlist
    (the E1 prerequisite) for the small classics."""
    sg = state_graph_of(benchmark(name))
    implementations = synthesize_all(sg)
    stats = Netlist(name, implementations).stats()
    assert stats.literals > 0
    assert stats.max_complexity >= 1


def test_suite_complexity_spread():
    """The suite must span the paper's range: trivially-fitting
    circuits up to 6+-literal covers (the global-ack showcases)."""
    worst = {}
    for name in ("half", "mr1", "mr0", "pe-send-ifc"):
        sg = state_graph_of(benchmark(name))
        stats = Netlist(name, synthesize_all(sg)).stats()
        worst[name] = stats.max_complexity
    assert worst["half"] <= 2
    assert worst["mr1"] >= 5
    assert worst["mr0"] >= 6
    assert worst["pe-send-ifc"] >= 7


def test_load_all():
    circuits = load_all()
    assert len(circuits) == 32
    assert all(circuits[name].name == name for name in circuits)
