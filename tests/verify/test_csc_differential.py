"""End-to-end differential harness for the CSC solver.

Every built-in benchmark and a family of deliberately conflicted
circuits is pushed through *both* solver methods (``"regions"`` and
``"blocks"``) and checked against the library's own oracles:

* the solved state graph has zero :func:`csc_violations` and passes the
  full speed-independence property suite;
* the synthesized standard-C netlist passes the gate-level SI check
  (:func:`verify_implementation`);
* the solved graph conforms to the original STG — weak bisimilarity
  with the inserted signals hidden (:mod:`repro.verify.conformance`);
* the two methods' telemetry is diffed: both must solve, and their
  per-step records must be internally consistent.

The 32 published benchmarks are all CSC-clean (the paper's Table-1
suite assumes CSC), so for them the harness additionally proves the
solver is a strict no-op: identical state sets, arcs and codes.
"""

import pytest

from repro.bench_suite import benchmark_names
from repro.mapping.csc import CSC_METHODS, CscConfig, csc_conflicts, solve_csc
from repro.sg.properties import check_speed_independence, csc_violations
from repro.sg.reachability import state_graph_of
from repro.stg.parser import parse_g
from repro.synthesis.cover import synthesize_all
from repro.verify import verify_implementation, weakly_bisimilar
from tests.conftest import chained_sequencer_stg

# ----------------------------------------------------------------------
# Conflicted circuits (the built-in suite is CSC-clean by construction)
# ----------------------------------------------------------------------


def _sequencer(stages: int):
    return state_graph_of(chained_sequencer_stg(stages))


ALTERNATOR_G = """
.model alternator
.inputs r
.outputs a b
.graph
r+ a+
a+ r-
r- a-
a- r+/2
r+/2 b+
b+ r-/2
r-/2 b-
b- r+
.marking { <b-,r+> }
.end
"""


def _conflicted_circuits():
    circuits = {
        "seqcsc2": _sequencer(2),
        "seqcsc3": _sequencer(3),
        "alternator": state_graph_of(parse_g(ALTERNATOR_G)),
    }
    for name, sg in circuits.items():
        assert csc_conflicts(sg), f"{name} fixture must conflict"
    return circuits


_CONFLICTED = _conflicted_circuits()


@pytest.fixture(scope="module")
def solved():
    """Memoized solver outcomes, keyed by (circuit, method)."""
    cache = {}

    def run(name: str, sg, method: str):
        key = (name, method)
        if key not in cache:
            cache[key] = solve_csc(sg, config=CscConfig(method=method))
        return cache[key]

    return run


# ----------------------------------------------------------------------
# The whole built-in suite: the solver must be a verified no-op
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def benchmark_graphs():
    cache = {}

    def get(name: str):
        if name not in cache:
            from repro.bench_suite import benchmark
            cache[name] = state_graph_of(benchmark(name))
        return cache[name]

    return get


@pytest.mark.parametrize("name", benchmark_names())
@pytest.mark.parametrize("method", CSC_METHODS)
def test_benchmark_suite_stays_clean(name, method, benchmark_graphs,
                                     solved):
    sg = benchmark_graphs(name)
    result = solved(name, sg, method)
    assert csc_violations(result.sg) == []
    assert result.inserted_signals == 0
    assert result.candidates_evaluated == 0
    # A clean input must come back untouched: same states, same codes,
    # same arcs (strictly stronger than conformance for the no-op
    # case, and much cheaper on the 1000+-state graphs).
    assert set(result.sg.states) == set(sg.states)
    for state in sg.states:
        assert result.sg.code(state) == sg.code(state)
        assert sorted(result.sg.successors(state), key=repr) == \
            sorted(sg.successors(state), key=repr)


@pytest.mark.parametrize("name", benchmark_names())
def test_benchmark_telemetry_diff(name, benchmark_graphs, solved):
    """Both methods agree on the (empty) work done for clean inputs."""
    sg = benchmark_graphs(name)
    telemetries = {method: solved(name, sg, method).stats()
                   for method in CSC_METHODS}
    assert telemetries["regions"] == telemetries["blocks"] == {
        "signals_inserted": 0, "candidates_evaluated": 0}


# ----------------------------------------------------------------------
# Conflicted circuits: full differential treatment
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(_CONFLICTED))
@pytest.mark.parametrize("method", CSC_METHODS)
class TestConflictedCircuits:
    def test_solver_reaches_zero_violations(self, name, method, solved):
        sg = _CONFLICTED[name]
        result = solved(name, sg, method)
        assert csc_violations(result.sg) == []
        assert result.inserted_signals >= 1
        report = check_speed_independence(result.sg)
        assert report.implementable, report.all_violations()[:3]

    def test_netlist_passes_si_check(self, name, method, solved):
        sg = _CONFLICTED[name]
        result = solved(name, sg, method)
        implementations = synthesize_all(result.sg)
        verify_implementation(result.sg, implementations)
        # every inserted signal has real logic in the netlist
        for signal in result.inserted_names:
            assert signal in implementations

    def test_solution_conforms_to_original(self, name, method, solved):
        sg = _CONFLICTED[name]
        result = solved(name, sg, method)
        hidden = set(result.inserted_names)
        assert hidden == set(result.sg.signals) - set(sg.signals)
        assert weakly_bisimilar(sg, result.sg, hidden)

    def test_steps_are_monotone(self, name, method, solved):
        sg = _CONFLICTED[name]
        result = solved(name, sg, method)
        for step in result.steps:
            assert step.conflicts_after < step.conflicts_before
            assert step.candidates_evaluated >= 1
        assert result.steps[-1].conflicts_after == 0


@pytest.mark.parametrize("name", sorted(_CONFLICTED))
def test_conflicted_telemetry_diff(name, solved):
    """Diff the two methods' telemetry on the same conflicted input.

    Both must solve; the regions method prices every step (``cost``)
    while the legacy method never does — the differential harness
    pins that contract so a silent method mix-up cannot hide.
    """
    sg = _CONFLICTED[name]
    by_method = {method: solved(name, sg, method)
                 for method in CSC_METHODS}
    for method, result in by_method.items():
        assert result.method == method
        assert result.stats()["signals_inserted"] == \
            result.inserted_signals
        assert result.stats()["candidates_evaluated"] == \
            sum(s.candidates_evaluated for s in result.steps)
    assert all(s.cost is not None for s in by_method["regions"].steps)
    assert all(s.cost is None for s in by_method["blocks"].steps)
