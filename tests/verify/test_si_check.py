"""Unit tests for gate-level SI verification."""

import pytest

from repro.boolean.sop import SopCover
from repro.errors import VerificationError
from repro.synthesis.cover import synthesize_all, synthesize_signal
from repro.verify.si_check import verify_implementation


class TestCleanImplementations:
    def test_celement_passes(self, celement_sg):
        impls = synthesize_all(celement_sg)
        verify_implementation(celement_sg, impls)

    def test_two_er_passes(self, two_er_sg):
        verify_implementation(two_er_sg, synthesize_all(two_er_sg))

    def test_missing_signal_detected(self, celement_sg):
        with pytest.raises(VerificationError):
            verify_implementation(celement_sg, {})


class TestTamperedImplementations:
    def test_wrong_complete_cover_detected(self, two_er_sg):
        impls = synthesize_all(two_er_sg)
        impl = impls["x"]
        assert impl.is_combinational
        impl.complete = SopCover.from_string("a")  # drops the b term
        with pytest.raises(VerificationError):
            verify_implementation(two_er_sg, impls)

    def test_wrong_set_cover_detected(self, celement_sg):
        impls = synthesize_all(celement_sg)
        impl = impls["c"]
        # Replace the set cover a·b by a: covers states outside
        # ER(c+) ∪ QR(c+) and conflicts with the reset network.
        impl.set_covers[0].cover = SopCover.from_string("a")
        with pytest.raises(VerificationError):
            verify_implementation(celement_sg, impls)

    def test_stale_region_detected(self, celement_sg, two_er_sg):
        impls = synthesize_all(celement_sg)
        other = synthesize_signal(two_er_sg, "x")
        # x's covers reference regions of a different graph.
        impls["c"].set_covers = other.set_covers
        with pytest.raises(VerificationError):
            verify_implementation(celement_sg, impls)

    def test_forced_sequential_with_bad_reset(self, celement_sg):
        impls = synthesize_all(celement_sg)
        impl = impls["c"]
        impl.reset_covers[0].cover = SopCover.from_string("a' b' c'")
        # c' makes the reset cover 0 in ER(c-)? no — ER(c-) states have
        # c=1, so the tampered cover misses its own ER.
        with pytest.raises(VerificationError):
            verify_implementation(celement_sg, impls)
