"""Unit tests for weak-bisimulation conformance checking."""

import pytest

from repro._util import FrozenVector
from repro.boolean.sop import SopCover
from repro.mapping.insertion import insert_signal
from repro.mapping.partition import compute_insertion_sets
from repro.sg.graph import StateGraph
from repro.verify.conformance import weakly_bisimilar


def vec(**kwargs):
    return FrozenVector(kwargs)


class TestIdentity:
    def test_graph_bisimilar_to_itself(self, celement_sg):
        assert weakly_bisimilar(celement_sg, celement_sg, set())

    def test_copy_bisimilar(self, celement_sg):
        assert weakly_bisimilar(celement_sg, celement_sg.copy(), set())

    def test_relabel_bisimilar(self, celement_sg):
        assert weakly_bisimilar(celement_sg, celement_sg.relabel(), set())


class TestInsertionConformance:
    def test_insertion_is_weakly_bisimilar(self, celement_sg):
        partition = compute_insertion_sets(
            celement_sg, SopCover.from_string("a b"))
        new_sg = insert_signal(celement_sg, partition, "x").sg
        assert weakly_bisimilar(celement_sg, new_sg, {"x"})

    def test_alphabet_mismatch_fails(self, celement_sg, two_er_sg):
        assert not weakly_bisimilar(celement_sg, two_er_sg, set())


class TestBehaviouralDifferences:
    def _cycle(self, name, events_to_codes):
        """Build a single-cycle SG from (event, post-code) pairs."""
        events, codes = zip(*events_to_codes)
        signals = sorted(codes[0].keys())
        sg = StateGraph(name, [], signals)
        previous_code = codes[-1]
        sg.add_state(0, previous_code)
        for i, code in enumerate(codes[:-1], start=1):
            sg.add_state(i, code)
        n = len(codes)
        for i in range(n):
            sg.add_arc(i % n, events[i], (i + 1) % n)
        sg.set_initial(0)
        return sg

    def test_missing_behaviour_detected(self):
        # spec: a+ b+ a- b- ; impl: a+ a- (no b at all, different
        # alphabet) — and also a same-alphabet wrong-order variant.
        spec = self._cycle("spec", [
            ("a+", vec(a=1, b=0)), ("b+", vec(a=1, b=1)),
            ("a-", vec(a=0, b=1)), ("b-", vec(a=0, b=0))])
        impl = self._cycle("impl", [
            ("b+", vec(a=0, b=1)), ("a+", vec(a=1, b=1)),
            ("b-", vec(a=1, b=0)), ("a-", vec(a=0, b=0))])
        assert not weakly_bisimilar(spec, impl, set())

    def test_tau_loop_tolerated(self):
        spec = self._cycle("spec", [
            ("a+", vec(a=1)), ("a-", vec(a=0))])
        impl = StateGraph("impl", [], ["a", "t"])
        impl.add_state(0, vec(a=0, t=0))
        impl.add_state(1, vec(a=0, t=1))
        impl.add_state(2, vec(a=1, t=1))
        impl.add_state(3, vec(a=1, t=0))
        impl.add_arc(0, "t+", 1)
        impl.add_arc(1, "a+", 2)
        impl.add_arc(2, "t-", 3)
        impl.add_arc(3, "a-", 0)
        impl.set_initial(0)
        assert weakly_bisimilar(spec, impl, {"t"})
