"""Tests for the event-driven gate-level simulator."""

import pytest

from repro.boolean.sop import SopCover
from repro.errors import VerificationError
from repro.synthesis.cover import synthesize_all
from repro.synthesis.netlist import Netlist
from repro.verify.simulate import (GateLevelSimulator,
                                   simulate_implementation)


@pytest.fixture
def celement_netlist(celement_sg):
    return Netlist("celement", synthesize_all(celement_sg))


class TestCleanCircuits:
    def test_celement_simulates(self, celement_sg, celement_netlist):
        total = simulate_implementation(celement_sg, celement_netlist,
                                        seeds=range(8), steps=400)
        assert total > 0

    def test_combinational_circuit(self, two_er_sg):
        netlist = Netlist("twoer", synthesize_all(two_er_sg))
        simulate_implementation(two_er_sg, netlist, seeds=range(8),
                                steps=400)

    def test_mapped_benchmark(self):
        from repro.bench_suite import benchmark
        from repro.mapping.decompose import map_circuit
        from repro.sg.reachability import state_graph_of
        from repro.synthesis.library import GateLibrary
        sg = state_graph_of(benchmark("hazard"))
        result = map_circuit(sg, GateLibrary(2))
        simulate_implementation(result.sg, result.netlist,
                                seeds=range(8), steps=400)


class TestDetection:
    def test_wrong_cover_detected(self, celement_sg, celement_netlist):
        # Corrupt the set cover: c will rise at the wrong time or the
        # set/reset networks will conflict.
        for gate in celement_netlist.gates:
            if gate.output == "set_c_1":
                gate.cover = SopCover.from_string("a")
        with pytest.raises(VerificationError):
            simulate_implementation(celement_sg, celement_netlist,
                                    seeds=range(8), steps=400)

    def test_missing_gate_detected(self, celement_sg, celement_netlist):
        celement_netlist.c_elements.clear()
        with pytest.raises(VerificationError):
            GateLevelSimulator(celement_sg, celement_netlist)

    def test_deterministic_per_seed(self, celement_sg,
                                    celement_netlist):
        sim = GateLevelSimulator(celement_sg, celement_netlist)
        assert sim.run(steps=200, seed=3) == sim.run(steps=200, seed=3)
