"""Property tests for the bit-parallel minimizer kernels.

The numpy/bitset fast paths must agree exactly with the scalar
reference semantics they replaced: EXPAND's greedy choice, the
irredundant greedy cover, coverage tests, and the dict-backed cube
algebra.  The reference implementations are kept here, in test code,
as the executable specification.
"""

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.boolean.cube import Cube
from repro.boolean.minimize import (_contains, _count_covered,
                                    _coverage_matrix, _covered,
                                    _cube_back, _cube_int, _expand,
                                    _hits, _irredundant, _vector_int,
                                    minimize)
from repro.errors import CoverError

SIGNALS = ["a", "b", "c", "d", "e"]
WIDTH = len(SIGNALS)

IntCube = Tuple[int, int]


def all_vectors():
    return [dict(zip(SIGNALS, bits))
            for bits in itertools.product((0, 1), repeat=WIDTH)]


cube_strategy = st.dictionaries(
    st.sampled_from(SIGNALS), st.integers(0, 1), max_size=WIDTH
).map(Cube)

int_set_strategy = st.sets(st.integers(0, 2 ** WIDTH - 1), max_size=12)

spec_strategy = st.lists(st.integers(0, 2), min_size=2 ** WIDTH,
                         max_size=2 ** WIDTH)


# ----------------------------------------------------------------------
# Scalar reference implementations (the executable specification)
# ----------------------------------------------------------------------


def reference_expand(cube: IntCube, off: "np.ndarray",
                     prefer: "np.ndarray", width: int) -> IntCube:
    """The original per-bit EXPAND loop."""
    mask, value = cube
    improved = True
    while improved:
        improved = False
        best: Optional[Tuple[int, int, IntCube]] = None
        for index in range(width):
            bit = 1 << index
            if not mask & bit:
                continue
            wider = (mask & ~bit, value & ~bit)
            if _hits(wider, off):
                continue
            gain = _count_covered(wider, prefer) if len(prefer) else 0
            key = (gain, index)
            if best is None or key > best[:2]:
                best = (gain, index, wider)
        if best is not None:
            mask, value = best[2]
            improved = True
    return mask, value


def reference_irredundant(cubes: List[IntCube],
                          on: Sequence[int]) -> List[IntCube]:
    """The original greedy set-based irredundant step."""
    owners: Dict[int, List[IntCube]] = {
        v: [c for c in cubes if (v & c[0]) == c[1]] for v in on}
    for vector, who in owners.items():
        if not who:
            raise CoverError("uncoverable")
    chosen: List[IntCube] = []
    remaining: Set[int] = set(on)
    for vector, who in owners.items():
        if len(who) == 1 and who[0] not in chosen:
            chosen.append(who[0])
    for cube in chosen:
        remaining -= set(_covered(cube, remaining))
    pool = [c for c in cubes if c not in chosen]
    while remaining:
        remaining_list = sorted(remaining)
        best = max(pool or chosen,
                   key=lambda c: (len(_covered(c, remaining_list)),
                                  -bin(c[0]).count("1")))
        gained = set(_covered(best, remaining))
        if not gained:
            raise CoverError("stuck")
        if best not in chosen:
            chosen.append(best)
        remaining -= gained
    pruned = list(chosen)
    for cube in list(chosen):
        trial = [c for c in pruned if c != cube]
        if trial and all(any((v & c[0]) == c[1] for c in trial)
                         for v in on):
            pruned = trial
    return pruned


# ----------------------------------------------------------------------
# EXPAND / IRREDUNDANT / coverage agree with the reference
# ----------------------------------------------------------------------


class TestVectorizedKernels:
    @given(st.integers(0, 2 ** WIDTH - 1), int_set_strategy,
           int_set_strategy)
    @settings(max_examples=200, deadline=None)
    def test_expand_matches_reference(self, seed, off, prefer):
        off -= {seed}
        off_array = np.array(sorted(off), dtype=np.int64)
        prefer_array = np.array(sorted(prefer), dtype=np.int64)
        cube = ((1 << WIDTH) - 1, seed)
        assert _expand(cube, off_array, prefer_array, WIDTH) \
            == reference_expand(cube, off_array, prefer_array, WIDTH)

    @given(st.lists(st.tuples(st.integers(0, 2 ** WIDTH - 1),
                              st.integers(0, 2 ** WIDTH - 1)),
                    max_size=8),
           int_set_strategy)
    @settings(max_examples=200, deadline=None)
    def test_irredundant_matches_reference(self, raw_cubes, on):
        # Normalize to well-formed (mask, value) pairs, deduplicated
        # (the minimize() call site guarantees both).
        cubes = list({(mask, value & mask)
                      for mask, value in raw_cubes})
        on_list = sorted(on)
        try:
            expected = reference_irredundant(list(cubes), on_list)
        except CoverError:
            expected = None
        if expected is None:
            try:
                _irredundant(list(cubes), on_list)
            except CoverError:
                return
            raise AssertionError("reference raised, kernel did not")
        assert _irredundant(list(cubes), on_list) == expected

    @given(st.lists(cube_strategy, min_size=1, max_size=6),
           int_set_strategy)
    @settings(max_examples=100, deadline=None)
    def test_coverage_matrix_matches_cube_evaluate(self, cubes, vectors):
        vec_list = sorted(vectors)
        array = np.array(vec_list, dtype=np.int64)
        int_cubes = [_cube_int(cube, SIGNALS) for cube in cubes]
        matrix = _coverage_matrix(int_cubes, array)
        assert matrix.shape == (len(vec_list), len(cubes))
        for i, bits in enumerate(vec_list):
            vector = {name: (bits >> k) & 1
                      for k, name in enumerate(SIGNALS)}
            for j, cube in enumerate(cubes):
                assert bool(matrix[i, j]) == cube.evaluate(vector)


# ----------------------------------------------------------------------
# Int-cube algebra agrees with the Cube reference
# ----------------------------------------------------------------------


class TestCubeAgreement:
    @given(cube_strategy, cube_strategy)
    @settings(max_examples=150, deadline=None)
    def test_containment(self, a, b):
        ia, ib = _cube_int(a, SIGNALS), _cube_int(b, SIGNALS)
        assert _contains(ia, ib) == a.contains(b)

    @given(cube_strategy, cube_strategy)
    @settings(max_examples=150, deadline=None)
    def test_intersection_semantics(self, a, b):
        ia, ib = _cube_int(a, SIGNALS), _cube_int(b, SIGNALS)
        conflict = (ia[1] ^ ib[1]) & ia[0] & ib[0]
        both = a.intersect(b)
        assert (conflict == 0) == (both is not None)
        if both is not None:
            merged = (ia[0] | ib[0], ia[1] | ib[1])
            assert _cube_back(merged, SIGNALS) == both

    @given(cube_strategy, cube_strategy)
    @settings(max_examples=150, deadline=None)
    def test_consensus_against_truth_table(self, a, b):
        # The dict-backed consensus must still be the standard one:
        # defined iff distance == 1, and covered by a ∪ b pointwise
        # union with the conflict variable freed.
        consensus = a.consensus(b)
        assert (consensus is not None) == (a.distance(b) == 1)
        if consensus is not None:
            for vector in all_vectors():
                if consensus.evaluate(vector):
                    flipped = dict(vector)
                    conflicts = [n for n in SIGNALS
                                 if a.polarity(n) is not None
                                 and b.polarity(n) is not None
                                 and a.polarity(n) != b.polarity(n)]
                    assert len(conflicts) == 1
                    name = conflicts[0]
                    flipped[name] = a.polarity(name)
                    other = dict(vector)
                    other[name] = b.polarity(name)
                    assert a.evaluate(flipped) and b.evaluate(other)

    @given(cube_strategy)
    @settings(max_examples=100, deadline=None)
    def test_polarity_matches_literal_tuple(self, cube):
        literals = dict(tuple(cube))
        for name in SIGNALS:
            assert cube.polarity(name) == literals.get(name)


# ----------------------------------------------------------------------
# minimize() accepts packed ints and agrees with the mapping path
# ----------------------------------------------------------------------


class TestPackedInputs:
    @given(spec_strategy)
    @settings(max_examples=60, deadline=None)
    def test_packed_and_mapping_inputs_agree(self, spec):
        vectors = all_vectors()
        on = [v for v, kind in zip(vectors, spec) if kind == 1]
        off = [v for v, kind in zip(vectors, spec) if kind == 0]
        on_ints = [_vector_int(v, SIGNALS) for v in on]
        off_ints = [_vector_int(v, SIGNALS) for v in off]
        assert minimize(on, off, SIGNALS) \
            == minimize(on_ints, off_ints, SIGNALS)
