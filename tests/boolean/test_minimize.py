"""Unit tests for the two-level minimizer."""

import itertools

import pytest

from repro.boolean.minimize import (_vector_int, expand_cube,
                                    literal_complexity, minimize)
from repro.boolean.cube import Cube
from repro.boolean.sop import SopCover
from repro.errors import CoverError
from repro._util import FrozenVector


def vectors(support, bits_list):
    return [dict(zip(support, [int(b) for b in bits]))
            for bits in bits_list]


class TestMinimize:
    def test_constant_one(self):
        support = ["a", "b"]
        on = vectors(support, ["00", "01", "10", "11"])
        cover = minimize(on, [], support)
        assert cover.is_one()

    def test_constant_zero(self):
        assert minimize([], vectors(["a"], ["0"]), ["a"]).is_zero()

    def test_overlap_raises(self):
        with pytest.raises(CoverError):
            minimize(vectors(["a"], ["1"]), vectors(["a"], ["1"]), ["a"])

    def test_single_minterm(self):
        support = ["a", "b"]
        cover = minimize(vectors(support, ["10"]),
                         vectors(support, ["00", "01", "11"]), support)
        assert cover.to_string() == "a b'"

    def test_dont_cares_enable_expansion(self):
        # ON = {11}, OFF = {00}; 01 and 10 are DC, so a single literal
        # suffices.
        support = ["a", "b"]
        cover = minimize(vectors(support, ["11"]),
                         vectors(support, ["00"]), support)
        assert cover.literal_count() == 1

    def test_full_function_xor(self):
        support = ["a", "b"]
        on = vectors(support, ["01", "10"])
        off = vectors(support, ["00", "11"])
        cover = minimize(on, off, support)
        assert cover.literal_count() == 4  # XOR is irreducible

    def test_covers_on_avoids_off_exhaustive(self):
        # Random-ish incompletely specified functions over 4 variables.
        support = ["a", "b", "c", "d"]
        space = [dict(zip(support, bits))
                 for bits in itertools.product((0, 1), repeat=4)]
        on = [v for i, v in enumerate(space) if i % 3 == 0]
        off = [v for i, v in enumerate(space) if i % 3 == 1]
        cover = minimize(on, off, support)
        for v in on:
            assert cover.evaluate(v)
        for v in off:
            assert not cover.evaluate(v)

    def test_projection_of_extra_signals(self):
        support = ["a"]
        cover = minimize([{"a": 1, "z": 0}], [{"a": 0, "z": 1}], support)
        assert cover.to_string() == "a"

    def test_quality_adjacent_minterms_merge(self):
        support = ["a", "b", "c"]
        on = vectors(support, ["110", "111"])
        off = vectors(support, ["000", "001", "010", "011", "100", "101"])
        cover = minimize(on, off, support)
        assert cover.to_string() == "a b"

    def test_multi_cube_result(self):
        support = ["a", "b"]
        on = vectors(support, ["01", "10", "11"])
        off = vectors(support, ["00"])
        cover = minimize(on, off, support)
        assert cover.equivalent(minimize(on, off, support))
        assert cover.literal_count() == 2  # a + b


class TestExpandCube:
    def test_expand_removes_redundant_literals(self):
        off = [FrozenVector({"a": 0, "b": 0})]
        cube = Cube.from_string("a b")
        expanded = expand_cube(cube, off)
        assert len(expanded) == 1

    def test_expand_blocked_by_off(self):
        off = [FrozenVector({"a": 1, "b": 0}),
               FrozenVector({"a": 0, "b": 1})]
        cube = Cube.from_string("a b")
        assert expand_cube(cube, off) == cube


class TestWideSupport:
    """Supports wider than 63 signals do not fit the int64 packing;
    the kernels must fall back to object arrays of Python ints instead
    of raising OverflowError."""

    SUPPORT = [f"s{i:02d}" for i in range(70)]

    def _vector(self, ones):
        return {name: (1 if name in ones else 0) for name in self.SUPPORT}

    def test_minimize_beyond_63_signals(self):
        on = [self._vector({"s69"}),
              self._vector({"s69", "s00"}),
              self._vector({"s69", "s64", "s32"})]
        off = [self._vector(set()),
               self._vector({"s64"}),
               self._vector({"s00", "s31"})]
        cover = minimize(on, off, self.SUPPORT)
        assert all(cover.evaluate(v) for v in on)
        assert not any(cover.evaluate(v) for v in off)
        # EXPAND must still find the single-literal prime on the bit
        # past the int64 boundary.
        assert cover == SopCover([Cube({"s69": 1})])

    def test_packed_int_inputs_agree_beyond_63_signals(self):
        on = [self._vector({"s69"}), self._vector({"s69", "s65"})]
        off = [self._vector({"s65"}), self._vector(set())]
        on_ints = [_vector_int(v, self.SUPPORT) for v in on]
        off_ints = [_vector_int(v, self.SUPPORT) for v in off]
        assert minimize(on, off, self.SUPPORT) \
            == minimize(on_ints, off_ints, self.SUPPORT)

    def test_expand_cube_beyond_63_signals(self):
        off = [FrozenVector(self._vector(set()))]
        cube = Cube({name: 1 for name in self.SUPPORT})
        expanded = expand_cube(cube, off)
        assert len(expanded) == 1
        assert not expanded.evaluate(off[0])


class TestLiteralComplexity:
    def test_xor_is_four_literals(self):
        support = ["a", "b"]
        on = vectors(support, ["01", "10"])
        off = vectors(support, ["00", "11"])
        complexity, cover, complement = literal_complexity(on, off, support)
        assert complexity == 4
        assert cover.literal_count() == 4
        assert complement.literal_count() == 4

    def test_measure_uses_cheaper_polarity(self):
        # f = a + b + c (3 literals); f' = a'b'c' (3 literals) — tie.
        # g = a b + a c + b c (6 literals); g' is also majority (6).
        # h = a' b' (2) vs h' = a + b (2).
        support = ["a", "b", "c"]
        space = [dict(zip(support, bits))
                 for bits in itertools.product((0, 1), repeat=3)]
        on = [v for v in space if not (v["a"] or v["b"])]
        off = [v for v in space if v["a"] or v["b"]]
        complexity, _, _ = literal_complexity(on, off, support)
        assert complexity == 2

    def test_paper_example_4_literal_and_or(self):
        # f = ab + ac + db + dc = (a + d)(b + c); complement has 4
        # literals (a'd' + b'c'), so the paper counts f as a 4-literal
        # gate (§4).
        support = ["a", "b", "c", "d"]
        space = [dict(zip(support, bits))
                 for bits in itertools.product((0, 1), repeat=4)]
        on = [v for v in space
              if (v["a"] or v["d"]) and (v["b"] or v["c"])]
        off = [v for v in space if v not in on]
        complexity, _, _ = literal_complexity(on, off, support)
        assert complexity == 4
