"""Unit tests for the ROBDD package."""

import itertools

import pytest

from repro.boolean.bdd import Bdd
from repro.boolean.cube import Cube
from repro.boolean.sop import SopCover


@pytest.fixture
def manager():
    return Bdd(["a", "b", "c", "d"])


class TestBasics:
    def test_terminals(self, manager):
        assert manager.is_tautology(Bdd.TRUE)
        assert manager.is_contradiction(Bdd.FALSE)

    def test_var_evaluation(self, manager):
        node = manager.var("a")
        assert manager.evaluate(node, {"a": 1, "b": 0, "c": 0, "d": 0})
        assert not manager.evaluate(node, {"a": 0, "b": 0, "c": 0, "d": 0})

    def test_nvar(self, manager):
        node = manager.nvar("b")
        assert manager.evaluate(node, {"a": 0, "b": 0, "c": 0, "d": 0})

    def test_unknown_variable(self, manager):
        with pytest.raises(KeyError):
            manager.var("z")

    def test_duplicate_order_rejected(self):
        with pytest.raises(ValueError):
            Bdd(["a", "a"])

    def test_hash_consing(self, manager):
        assert manager.var("a") == manager.var("a")


class TestOperations:
    def test_and_or_not(self, manager):
        a, b = manager.var("a"), manager.var("b")
        both = manager.apply_and(a, b)
        either = manager.apply_or(a, b)
        for va, vb in itertools.product((0, 1), repeat=2):
            v = {"a": va, "b": vb, "c": 0, "d": 0}
            assert manager.evaluate(both, v) == bool(va and vb)
            assert manager.evaluate(either, v) == bool(va or vb)
        assert manager.negate(manager.negate(a)) == a

    def test_xor(self, manager):
        a, b = manager.var("a"), manager.var("b")
        xor = manager.apply_xor(a, b)
        for va, vb in itertools.product((0, 1), repeat=2):
            v = {"a": va, "b": vb, "c": 0, "d": 0}
            assert manager.evaluate(xor, v) == (va != vb)

    def test_excluded_middle(self, manager):
        a = manager.var("a")
        assert manager.apply_or(a, manager.negate(a)) == Bdd.TRUE
        assert manager.apply_and(a, manager.negate(a)) == Bdd.FALSE

    def test_ite_identity(self, manager):
        a, b = manager.var("a"), manager.var("b")
        assert manager.ite(a, b, b) == b
        assert manager.ite(Bdd.TRUE, a, b) == a
        assert manager.ite(Bdd.FALSE, a, b) == b

    def test_restrict(self, manager):
        a, b = manager.var("a"), manager.var("b")
        f = manager.apply_and(a, b)
        assert manager.restrict(f, "a", 1) == b
        assert manager.restrict(f, "a", 0) == Bdd.FALSE

    def test_canonical_equivalence(self, manager):
        # (a AND b) OR (a AND c) == a AND (b OR c)
        a, b, c = (manager.var(x) for x in "abc")
        left = manager.apply_or(manager.apply_and(a, b),
                                manager.apply_and(a, c))
        right = manager.apply_and(a, manager.apply_or(b, c))
        assert manager.equivalent(left, right)

    def test_implies(self, manager):
        a, b = manager.var("a"), manager.var("b")
        assert manager.implies(manager.apply_and(a, b), a)
        assert not manager.implies(a, manager.apply_and(a, b))


class TestSopBridge:
    def test_cube(self, manager):
        node = manager.cube(Cube.from_string("a b'"))
        assert manager.evaluate(node, {"a": 1, "b": 0, "c": 0, "d": 0})
        assert not manager.evaluate(node, {"a": 1, "b": 1, "c": 0, "d": 0})

    def test_sop_matches_cover_semantics(self, manager):
        cover = SopCover.from_string("a b + c' d + a d")
        node = manager.sop(cover)
        for bits in itertools.product((0, 1), repeat=4):
            v = dict(zip("abcd", bits))
            assert manager.evaluate(node, v) == cover.evaluate(v)

    def test_sop_complement_check(self, manager):
        cover = SopCover.from_string("a b' + c")
        node = manager.sop(cover)
        comp = manager.sop(cover.complement())
        assert manager.apply_or(node, comp) == Bdd.TRUE
        assert manager.apply_and(node, comp) == Bdd.FALSE


class TestQueries:
    def test_sat_count(self, manager):
        a = manager.var("a")
        assert manager.sat_count(a) == 8  # half of 2^4
        ab = manager.apply_and(a, manager.var("b"))
        assert manager.sat_count(ab) == 4
        assert manager.sat_count(Bdd.TRUE) == 16
        assert manager.sat_count(Bdd.FALSE) == 0

    def test_support(self, manager):
        f = manager.apply_and(manager.var("a"), manager.var("c"))
        assert manager.support(f) == ("a", "c")

    def test_one_sat(self, manager):
        f = manager.apply_and(manager.var("a"), manager.nvar("c"))
        assignment = manager.one_sat(f)
        assert assignment["a"] == 1 and assignment["c"] == 0
        assert manager.one_sat(Bdd.FALSE) is None

    def test_node_count(self, manager):
        assert manager.node_count(manager.var("a")) == 1
        f = manager.apply_xor(manager.var("a"), manager.var("b"))
        assert manager.node_count(f) >= 2
