"""Property-based tests (hypothesis) for the boolean substrate.

The invariants here are the contracts the synthesis pipeline relies on:
minimization correctness against ON/OFF sets, complement involution,
division reconstruction, BDD-vs-SOP semantic agreement, cube algebra
laws.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.boolean.bdd import Bdd
from repro.boolean.cube import Cube
from repro.boolean.divisors import algebraic_division, kernels
from repro.boolean.minimize import minimize
from repro.boolean.sop import SopCover

SIGNALS = ["a", "b", "c", "d"]


def all_vectors():
    return [dict(zip(SIGNALS, bits))
            for bits in itertools.product((0, 1), repeat=len(SIGNALS))]


cube_strategy = st.dictionaries(
    st.sampled_from(SIGNALS), st.integers(0, 1), max_size=4
).map(Cube)

cover_strategy = st.lists(cube_strategy, max_size=5).map(SopCover)

# A random incompletely specified function: each vector is ON (1),
# OFF (0) or DC (2).
spec_strategy = st.lists(st.integers(0, 2), min_size=16, max_size=16)


class TestMinimizeProperties:
    @given(spec_strategy)
    @settings(max_examples=60, deadline=None)
    def test_minimize_respects_on_and_off(self, spec):
        vectors = all_vectors()
        on = [v for v, kind in zip(vectors, spec) if kind == 1]
        off = [v for v, kind in zip(vectors, spec) if kind == 0]
        cover = minimize(on, off, SIGNALS)
        for v in on:
            assert cover.evaluate(v)
        for v in off:
            assert not cover.evaluate(v)

    @given(spec_strategy)
    @settings(max_examples=30, deadline=None)
    def test_minimize_not_worse_than_minterms(self, spec):
        vectors = all_vectors()
        on = [v for v, kind in zip(vectors, spec) if kind == 1]
        off = [v for v, kind in zip(vectors, spec) if kind == 0]
        cover = minimize(on, off, SIGNALS)
        naive = SopCover.from_minterms(on, SIGNALS)
        assert cover.literal_count() <= naive.literal_count()


class TestCoverProperties:
    @given(cover_strategy)
    @settings(max_examples=60, deadline=None)
    def test_complement_is_involution(self, cover):
        assert cover.complement().complement().equivalent(cover)

    @given(cover_strategy)
    @settings(max_examples=60, deadline=None)
    def test_complement_is_exhaustive_and_disjoint(self, cover):
        complement = cover.complement()
        for v in all_vectors():
            assert cover.evaluate(v) != complement.evaluate(v)

    @given(cover_strategy, cover_strategy)
    @settings(max_examples=60, deadline=None)
    def test_plus_is_disjunction(self, left, right):
        union = left.plus(right)
        for v in all_vectors():
            assert union.evaluate(v) == (left.evaluate(v)
                                         or right.evaluate(v))

    @given(cover_strategy, cover_strategy)
    @settings(max_examples=60, deadline=None)
    def test_times_is_conjunction(self, left, right):
        product = left.times(right)
        for v in all_vectors():
            assert product.evaluate(v) == (left.evaluate(v)
                                           and right.evaluate(v))

    @given(cover_strategy)
    @settings(max_examples=40, deadline=None)
    def test_tautology_agrees_with_enumeration(self, cover):
        expected = all(cover.evaluate(v) for v in all_vectors())
        assert cover.is_tautology() == expected


class TestDivisionProperties:
    @given(cover_strategy, cover_strategy)
    @settings(max_examples=60, deadline=None)
    def test_division_reconstruction(self, cover, divisor):
        if divisor.is_zero():
            return
        quotient, rest = algebraic_division(cover, divisor)
        rebuilt = divisor.times(quotient).plus(rest)
        # Algebraic division never loses or invents behaviour.
        for v in all_vectors():
            assert rebuilt.evaluate(v) == cover.evaluate(v)

    @given(cover_strategy)
    @settings(max_examples=40, deadline=None)
    def test_kernels_are_cube_free_quotients(self, cover):
        for kernel in kernels(cover):
            assert kernel.is_cube_free()
            assert kernel.num_cubes() >= 2


class TestBddAgreement:
    @given(cover_strategy)
    @settings(max_examples=60, deadline=None)
    def test_bdd_matches_sop_semantics(self, cover):
        manager = Bdd(SIGNALS)
        node = manager.sop(cover)
        for v in all_vectors():
            assert manager.evaluate(node, v) == cover.evaluate(v)

    @given(cover_strategy, cover_strategy)
    @settings(max_examples=40, deadline=None)
    def test_bdd_equivalence_matches_cover_equivalence(self, left, right):
        manager = Bdd(SIGNALS)
        assert (manager.sop(left) == manager.sop(right)) == \
            left.equivalent(right)


class TestCubeProperties:
    @given(cube_strategy, cube_strategy)
    @settings(max_examples=60, deadline=None)
    def test_intersection_semantics(self, left, right):
        product = left.intersect(right)
        for v in all_vectors():
            expected = left.evaluate(v) and right.evaluate(v)
            got = product.evaluate(v) if product is not None else False
            assert got == expected

    @given(cube_strategy, cube_strategy)
    @settings(max_examples=60, deadline=None)
    def test_supercube_contains_both(self, left, right):
        sup = left.supercube(right)
        assert sup.contains(left)
        assert sup.contains(right)

    @given(cube_strategy, cube_strategy)
    @settings(max_examples=60, deadline=None)
    def test_containment_agrees_with_semantics(self, outer, inner):
        semantic = all(outer.evaluate(v) for v in all_vectors()
                       if inner.evaluate(v))
        assert outer.contains(inner) == semantic
