"""Unit tests for :mod:`repro.boolean.cube`."""

import copyreg
import io
import pickle

import pytest

from repro.boolean.cube import Cube
from repro.errors import ParseError


class TestConstruction:
    def test_empty_cube_is_one(self):
        assert Cube.one().is_one()
        assert len(Cube.one()) == 0

    def test_literal_values_validated(self):
        with pytest.raises(ValueError):
            Cube({"a": 2})

    def test_from_string_apostrophe(self):
        cube = Cube.from_string("a b' c")
        assert cube.literals == {"a": 1, "b": 0, "c": 1}

    def test_from_string_bang_and_tilde(self):
        assert Cube.from_string("!a ~b c").literals == {
            "a": 0, "b": 0, "c": 1}

    def test_from_string_star_separator(self):
        assert Cube.from_string("a*b'*c") == Cube({"a": 1, "b": 0, "c": 1})

    def test_from_string_contradiction_rejected(self):
        with pytest.raises(ParseError):
            Cube.from_string("a a'")

    def test_from_string_bad_token(self):
        with pytest.raises(ParseError):
            Cube.from_string("a+b")

    def test_from_minterm_projection(self):
        cube = Cube.from_minterm({"a": 1, "b": 0, "c": 1}, support=["a", "b"])
        assert cube.literals == {"a": 1, "b": 0}

    def test_literal_count_is_len(self):
        assert len(Cube.from_string("a b c'")) == 3


class TestSemantics:
    def test_evaluate(self):
        cube = Cube.from_string("a b'")
        assert cube.evaluate({"a": 1, "b": 0, "c": 0})
        assert not cube.evaluate({"a": 1, "b": 1, "c": 0})

    def test_one_covers_everything(self):
        assert Cube.one().evaluate({"a": 0})

    def test_contains_reflexive(self):
        cube = Cube.from_string("a b")
        assert cube.contains(cube)

    def test_contains_wider_covers_narrower(self):
        assert Cube.from_string("a").contains(Cube.from_string("a b"))
        assert not Cube.from_string("a b").contains(Cube.from_string("a"))

    def test_contains_polarity_mismatch(self):
        assert not Cube.from_string("a").contains(Cube.from_string("a'"))

    def test_intersect(self):
        left = Cube.from_string("a b")
        right = Cube.from_string("b c'")
        assert left.intersect(right) == Cube.from_string("a b c'")

    def test_intersect_orthogonal_is_none(self):
        assert Cube.from_string("a").intersect(Cube.from_string("a'")) is None

    def test_distance(self):
        assert Cube.from_string("a b").distance(Cube.from_string("a' b'")) == 2
        assert Cube.from_string("a b").distance(Cube.from_string("a c")) == 0

    def test_supercube(self):
        sup = Cube.from_string("a b c").supercube(Cube.from_string("a b' c"))
        assert sup == Cube.from_string("a c")

    def test_consensus_distance_one(self):
        left = Cube.from_string("a b")
        right = Cube.from_string("a' c")
        assert left.consensus(right) == Cube.from_string("b c")

    def test_consensus_undefined_otherwise(self):
        assert Cube.from_string("a b").consensus(
            Cube.from_string("a' b'")) is None

    def test_cofactor_conflicting_is_none(self):
        assert Cube.from_string("a b").cofactor("a", 0) is None

    def test_cofactor_removes_literal(self):
        assert Cube.from_string("a b").cofactor("a", 1) == \
            Cube.from_string("b")

    def test_cofactor_free_variable(self):
        assert Cube.from_string("b").cofactor("a", 0) == \
            Cube.from_string("b")

    def test_cube_cofactor(self):
        cube = Cube.from_string("a b c")
        assert cube.cube_cofactor(Cube.from_string("a b")) == \
            Cube.from_string("c")
        assert cube.cube_cofactor(Cube.from_string("a'")) is None


class TestPlumbing:
    def test_equality_and_hash(self):
        assert Cube.from_string("a b'") == Cube({"b": 0, "a": 1})
        assert hash(Cube.from_string("a b'")) == hash(Cube({"b": 0, "a": 1}))

    def test_set_membership(self):
        cubes = {Cube.from_string("a"), Cube.from_string("a")}
        assert len(cubes) == 1

    def test_to_string_sorted_and_roundtrip(self):
        cube = Cube({"b": 0, "a": 1})
        assert cube.to_string() == "a b'"
        assert Cube.from_string(cube.to_string()) == cube

    def test_one_to_string(self):
        assert Cube.one().to_string() == "1"

    def test_rename(self):
        cube = Cube.from_string("a b'")
        assert cube.rename({"a": "x"}) == Cube.from_string("x b'")

    def test_without(self):
        assert Cube.from_string("a b c").without(["b"]) == \
            Cube.from_string("a c")

    def test_support_sorted(self):
        assert Cube.from_string("c a b").support == ("a", "b", "c")

    def test_pickle_round_trip(self):
        cube = Cube.from_string("a b' c")
        restored = pickle.loads(pickle.dumps(cube))
        assert restored == cube
        assert hash(restored) == hash(cube)
        assert restored.polarity("b") == 0

    def test_unpickles_legacy_slot_state(self):
        """Artifact-store entries written before ``_map`` existed carry
        default slot-state pickles (``NEWOBJ(Cube)`` + ``BUILD`` with
        only ``_literals``/``_hash``); they must restore into the
        current layout with every derived field rebuilt."""
        cube = Cube({"a": 1, "b": 0})
        buffer = io.BytesIO()
        pickler = pickle.Pickler(buffer, protocol=2)
        # Emit the exact reduce shape the pre-_map Cube pickled with:
        # no __reduce__, so NEWOBJ plus the slot-state dict (with a
        # stale _hash from some other process's hash seed).
        pickler.dispatch_table = {
            Cube: lambda obj: (copyreg.__newobj__, (Cube,),
                               (None, {"_literals": obj._literals,
                                       "_hash": -12345}))}
        pickler.dump(cube)

        restored = pickle.loads(buffer.getvalue())
        assert isinstance(restored, Cube)
        assert restored == Cube({"a": 1, "b": 0})
        # The derived dict twin works (this raised AttributeError
        # before __setstate__ existed)...
        assert restored.polarity("a") == 1
        assert restored.polarity("z") is None
        assert restored.contains(Cube({"a": 1, "b": 0, "c": 1}))
        assert restored.distance(Cube({"a": 0, "b": 0})) == 1
        # ...and the stale cross-process hash is not trusted.
        assert hash(restored) == hash(Cube({"a": 1, "b": 0}))
