"""Unit tests for algebraic division, kernels and divisor generation."""

import pytest

from repro.boolean.divisors import (algebraic_division, co_kernels,
                                    generate_divisors, kernels)
from repro.boolean.sop import SopCover


def cover(text):
    return SopCover.from_string(text)


class TestAlgebraicDivision:
    def test_textbook_division(self):
        # (a + b) divides ac + bc + d with quotient c, remainder d.
        quotient, rest = algebraic_division(cover("a c + b c + d"),
                                            cover("a + b"))
        assert quotient == cover("c")
        assert rest == cover("d")

    def test_cube_division(self):
        quotient, rest = algebraic_division(cover("a b c + a b d"),
                                            cover("a b"))
        assert quotient == cover("c + d")
        assert rest.is_zero()

    def test_division_failure_gives_zero_quotient(self):
        quotient, rest = algebraic_division(cover("a b"), cover("c"))
        assert quotient.is_zero()
        assert rest == cover("a b")

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            algebraic_division(cover("a"), cover("0"))

    def test_reconstruction_invariant(self):
        c = cover("a c + b c + a d + b d + e")
        divisor = cover("a + b")
        quotient, rest = algebraic_division(c, divisor)
        rebuilt = divisor.times(quotient).plus(rest)
        assert rebuilt.equivalent(c)

    def test_partial_quotient(self):
        # a b + a c + b d: dividing by (b + c) only a-cubes qualify.
        quotient, rest = algebraic_division(cover("a b + a c + b d"),
                                            cover("b + c"))
        assert quotient == cover("a")
        assert rest == cover("b d")


class TestKernels:
    def test_paper_example_kernel(self):
        # §3.1, Example 2: c(z*) = ab + ac + def has kernel b + c.
        ks = kernels(cover("a b + a c + d e f"))
        assert cover("b + c") in ks

    def test_cube_free_cover_is_own_kernel(self):
        ks = kernels(cover("a b + c d"))
        assert cover("a b + c d") in ks

    def test_single_cube_has_no_kernels(self):
        assert kernels(cover("a b c")) == []

    def test_co_kernel_pairing(self):
        pairs = co_kernels(cover("a b + a c"))
        kernel_map = {kernel: ck for ck, kernel in pairs}
        assert cover("b + c") in kernel_map
        assert kernel_map[cover("b + c")].to_string() == "a"

    def test_classic_multilevel_example(self):
        # f = adf + aef + bdf + bef + cdf + cef + g
        #   = (a + b + c)(d + e)f + g
        f = cover("a d f + a e f + b d f + b e f + c d f + c e f + g")
        ks = kernels(f)
        assert cover("a + b + c") in ks
        assert cover("d + e") in ks

    def test_kernels_are_cube_free(self):
        for kernel in kernels(cover("a b + a c + a d e + b c d")):
            assert kernel.is_cube_free()


class TestGenerateDivisors:
    def test_paper_example_2(self):
        # For c = ab + ac + def the paper lists: the kernel b + c, the
        # OR-decompositions (subsets of cubes) and AND-decompositions
        # de, df, ef of the 3-literal cube.
        divisors = generate_divisors(cover("a b + a c + d e f"),
                                     max_candidates=64)
        assert cover("b + c") in divisors
        assert cover("a b") in divisors
        assert cover("a b + a c") in divisors
        assert cover("d e") in divisors
        assert cover("d f") in divisors
        assert cover("e f") in divisors

    def test_single_cube_and_decomposition(self):
        # §3.1 example hazard.g: a single 3-literal cube has exactly its
        # three 2-literal sub-cubes as divisors.
        divisors = generate_divisors(cover("a' d' c"))
        assert cover("a' d'") in divisors
        assert cover("a' c") in divisors
        assert cover("d' c") in divisors

    def test_no_trivial_divisors(self):
        for divisor in generate_divisors(cover("a b + a c + d e f")):
            assert divisor.literal_count() >= 2

    def test_cover_itself_excluded(self):
        c = cover("a b + c d")
        assert c not in generate_divisors(c)

    def test_max_candidates_respected(self):
        c = cover("a b + c d + e f + g h + i j + k l")
        assert len(generate_divisors(c, max_candidates=10)) <= 10

    def test_two_literal_cover_has_no_divisors(self):
        assert generate_divisors(cover("a b")) == []

    def test_sorted_by_size(self):
        divisors = generate_divisors(cover("a b + a c + d e f"))
        sizes = [d.literal_count() for d in divisors]
        assert sizes == sorted(sizes)
