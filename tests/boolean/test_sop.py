"""Unit tests for :mod:`repro.boolean.sop`."""

import pytest

from repro.boolean.cube import Cube
from repro.boolean.sop import SopCover


def cover(text):
    return SopCover.from_string(text)


class TestConstruction:
    def test_zero_and_one(self):
        assert cover("0").is_zero()
        assert cover("1").is_one()
        assert SopCover.zero().literal_count() == 0

    def test_single_cube_containment_dedup(self):
        c = cover("a + a b")
        assert c.num_cubes() == 1
        assert c == cover("a")

    def test_duplicate_cubes_merge(self):
        assert cover("a b + a b").num_cubes() == 1

    def test_from_minterms(self):
        c = SopCover.from_minterms(
            [{"a": 1, "b": 0}, {"a": 1, "b": 1}], ["a", "b"])
        assert c.evaluate({"a": 1, "b": 0})
        assert c.evaluate({"a": 1, "b": 1})
        assert not c.evaluate({"a": 0, "b": 0})

    def test_literal_count(self):
        assert cover("a b + c").literal_count() == 3

    def test_support(self):
        assert cover("a b + c d'").support == ("a", "b", "c", "d")


class TestSemantics:
    def test_evaluate_or_of_cubes(self):
        c = cover("a b + a' c")
        assert c.evaluate({"a": 1, "b": 1, "c": 0})
        assert c.evaluate({"a": 0, "b": 0, "c": 1})
        assert not c.evaluate({"a": 0, "b": 1, "c": 0})

    def test_covers_cube(self):
        c = cover("a b + a b'")
        assert c.covers_cube(Cube.from_string("a"))
        assert not c.covers_cube(Cube.from_string("b"))

    def test_covers_cover(self):
        assert cover("a + b").covers(cover("a b"))
        assert not cover("a b").covers(cover("a"))

    def test_equivalent(self):
        assert cover("a b + a b'").equivalent(cover("a"))

    def test_tautology_positive(self):
        assert cover("a + a'").is_tautology()
        assert cover("a b + a' + b'").is_tautology()

    def test_tautology_negative(self):
        assert not cover("a + b").is_tautology()
        assert not cover("0").is_tautology()

    def test_cofactor(self):
        c = cover("a b + a' c")
        assert c.cofactor("a", 1).equivalent(cover("b"))
        assert c.cofactor("a", 0).equivalent(cover("c"))

    def test_complement_single_cube(self):
        comp = cover("a b").complement()
        assert comp.equivalent(cover("a' + b'"))

    def test_complement_multi_cube(self):
        c = cover("a b + c")
        comp = c.complement()
        for a in (0, 1):
            for b in (0, 1):
                for cc in (0, 1):
                    v = {"a": a, "b": b, "c": cc}
                    assert c.evaluate(v) != comp.evaluate(v)

    def test_complement_constants(self):
        assert cover("0").complement().is_one()
        assert cover("1").complement().is_zero()

    def test_double_complement_equivalent(self):
        c = cover("a b' + a' c + b c'")
        assert c.complement().complement().equivalent(c)


class TestAlgebra:
    def test_plus(self):
        assert cover("a").plus(cover("b")) == cover("a + b")

    def test_times_cube(self):
        assert cover("a + b").times_cube(Cube.from_string("c")) == \
            cover("a c + b c")

    def test_times_cube_orthogonal_drops(self):
        assert cover("a + a'").times_cube(Cube.from_string("a")) == cover("a")

    def test_times(self):
        product = cover("a + b").times(cover("c + d"))
        assert product == cover("a c + a d + b c + b d")

    def test_common_cube(self):
        assert cover("a b c + a b d").common_cube() == \
            Cube.from_string("a b")

    def test_is_cube_free(self):
        assert cover("a + b").is_cube_free()
        assert not cover("a b + a c").is_cube_free()

    def test_make_cube_free(self):
        assert cover("a b + a c").make_cube_free() == cover("b + c")

    def test_rename(self):
        assert cover("a b + c").rename({"a": "x", "c": "y"}) == \
            cover("x b + y")

    def test_restrict(self):
        assert cover("a b + c").restrict(["a", "c"]) == cover("a + c")


class TestPlumbing:
    def test_hash_and_equality(self):
        assert cover("a + b") == cover("b + a")
        assert hash(cover("a + b")) == hash(cover("b + a"))

    def test_to_string_roundtrip(self):
        c = cover("a b' + c")
        assert SopCover.from_string(c.to_string()) == c

    def test_zero_to_string(self):
        assert cover("0").to_string() == "0"

    def test_iteration_sorted(self):
        cubes = list(cover("b + a"))
        assert cubes == sorted(cubes)
