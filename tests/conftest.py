"""Suite-wide pytest configuration.

Pins a derandomized Hypothesis profile so property-based tests are
reproducible in CI: no wall-clock deadline (the solver's worst case is
data-dependent, not a regression signal) and examples derived from a
fixed seed.  Set ``HYPOTHESIS_PROFILE=dev`` locally to explore with
fresh random examples instead.
"""

import os

from hypothesis import settings

settings.register_profile("ci", deadline=None, derandomize=True,
                          print_blob=True)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


def chained_sequencer_stg(stages: int = 2):
    """One request serialized into ``stages`` chained handshakes — the
    textbook CSC-violation family (every unobserved phase repeat is a
    conflict).  Shared by the CSC solver tests, the differential
    harness, the store tests and the CLI tests; ``stages=2`` is the
    classic "badseq".
    """
    from repro.stg.builders import marked_graph
    arcs = [("r+", "ro1+")]
    for i in range(1, stages + 1):
        arcs += [(f"ro{i}+", f"ai{i}+"), (f"ai{i}+", f"ro{i}-"),
                 (f"ro{i}-", f"ai{i}-")]
        if i < stages:
            arcs.append((f"ai{i}-", f"ro{i + 1}+"))
    arcs += [(f"ai{stages}-", "a+"), ("a+", "r-"), ("r-", "a-")]
    return marked_graph(
        "badseq" if stages == 2 else f"seqcsc{stages}",
        ["r"] + [f"ai{i}" for i in range(1, stages + 1)],
        ["a"] + [f"ro{i}" for i in range(1, stages + 1)],
        arcs, [("a-", "r+")])
