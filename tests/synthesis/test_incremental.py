"""Incremental resynthesis: identity with the full pass, dirtiness
classification, and the no-region-cover regression."""

import pytest

from repro._util import FrozenVector
from repro.boolean.sop import SopCover
from repro.mapping.insertion import insert_signal
from repro.mapping.partition import compute_insertion_sets
from repro.sg.graph import StateGraph
from repro.synthesis.cover import (ResynthesisStats, SignalImplementation,
                                   resynthesize_incremental,
                                   synthesize_all, synthesize_signal)


def _same_implementation(left: SignalImplementation,
                         right: SignalImplementation) -> bool:
    """Structural equality of two implementations, covers included."""
    if (left.signal != right.signal
            or left.combinational != right.combinational
            or left.complete != right.complete
            or left.complete_complement != right.complete_complement):
        return False
    for mine, theirs in ((left.set_covers, right.set_covers),
                         (left.reset_covers, right.reset_covers)):
        if len(mine) != len(theirs):
            return False
        for rc_a, rc_b in zip(mine, theirs):
            if (rc_a.cover != rc_b.cover
                    or rc_a.complement != rc_b.complement
                    or rc_a.quiescent != rc_b.quiescent
                    or [ (r.event, r.index, r.states) for r in rc_a.regions]
                    != [ (r.event, r.index, r.states) for r in rc_b.regions]):
                return False
    return True


class TestIncrementalMatchesFull:
    def test_celement_after_insertion(self, celement_sg):
        old_implementations = synthesize_all(celement_sg)
        partition = compute_insertion_sets(celement_sg,
                                           SopCover.from_string("a b"))
        inserted = insert_signal(celement_sg, partition, "x")
        full = synthesize_all(inserted.sg)
        incremental, stats = resynthesize_incremental(
            inserted.sg, old_implementations, inserted.changes)
        assert set(incremental) == set(full)
        for signal in full:
            assert _same_implementation(incremental[signal],
                                        full[signal]), signal
        assert stats.total == len(full)
        assert stats.resynthesized >= 1      # at least the new signal

    def test_precomputed_target_is_taken_verbatim(self, celement_sg):
        old_implementations = synthesize_all(celement_sg)
        partition = compute_insertion_sets(celement_sg,
                                           SopCover.from_string("a b"))
        inserted = insert_signal(celement_sg, partition, "x")
        ready = synthesize_signal(inserted.sg, "c")
        incremental, stats = resynthesize_incremental(
            inserted.sg, old_implementations, inserted.changes,
            precomputed={"c": ready})
        assert incremental["c"] is ready
        assert stats.resynthesized >= 1


class TestChangeSummary:
    def test_split_states_and_levels(self, celement_sg):
        partition = compute_insertion_sets(celement_sg,
                                           SopCover.from_string("a b"))
        inserted = insert_signal(celement_sg, partition, "x")
        changes = inserted.changes
        assert changes.signal == "x"
        # Every split state has both copies in the new graph; every
        # unsplit state's level matches its copy's x code bit.
        for state in changes.split_states:
            assert (state, 0) in inserted.sg and (state, 1) in inserted.sg
        for state, level in changes.levels.items():
            assert (state, level) in inserted.sg
            assert inserted.sg.code((state, level))["x"] == level
            assert not changes.is_split(state)
            assert changes.copy_of(state) == (state, level)
        covered = changes.split_states | set(changes.levels)
        assert covered == set(celement_sg.states)
        assert changes.touches(changes.split_states)

    def test_stats_repr(self):
        stats = ResynthesisStats(resynthesized=2, reused=3)
        assert stats.total == 5
        assert "reused=3" in repr(stats)


class TestConstantOutput:
    def _constant_output_sg(self) -> StateGraph:
        sg = StateGraph("const", inputs=["a"], outputs=["z"])
        sg.add_state("s0", FrozenVector({"a": 0, "z": 0}))
        sg.add_state("s1", FrozenVector({"a": 1, "z": 0}))
        sg.add_arc("s0", "a+", "s1")
        sg.add_arc("s1", "a-", "s0")
        sg.set_initial("s0")
        return sg

    def test_no_excitation_regions_does_not_crash(self):
        """Regression: max() over the empty region-cover sequence used
        to raise ValueError for a never-switching output."""
        sg = self._constant_output_sg()
        impl = synthesize_signal(sg, "z")
        assert impl.set_covers == [] and impl.reset_covers == []
        assert impl.complete is not None
        assert impl.is_combinational
        assert impl.max_complexity() == 0
