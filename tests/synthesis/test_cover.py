"""Unit tests for monotonous/complete cover synthesis."""

import pytest

from repro.boolean.sop import SopCover
from repro.errors import CoverError
from repro.sg.regions import excitation_regions, quiescent_region
from repro.synthesis.cover import (complete_cover,
                                   complete_cover_with_self,
                                   monotonous_cover, synthesize_all,
                                   synthesize_signal)


class TestMonotonousCover:
    def test_celement_set_cover(self, celement_sg):
        regions = excitation_regions(celement_sg, "c+")
        rc = monotonous_cover(celement_sg, regions[0], regions)
        assert rc.cover == SopCover.from_string("a b")
        assert rc.complexity == 2

    def test_celement_reset_cover(self, celement_sg):
        regions = excitation_regions(celement_sg, "c-")
        rc = monotonous_cover(celement_sg, regions[0], regions)
        assert rc.cover == SopCover.from_string("a' b'")

    def test_mc_condition_1_covers_er(self, celement_sg):
        for event in ("c+", "c-"):
            regions = excitation_regions(celement_sg, event)
            rc = monotonous_cover(celement_sg, regions[0], regions)
            for state in regions[0].states:
                assert rc.cover.evaluate(celement_sg.code(state))

    def test_mc_condition_2_off_outside(self, celement_sg):
        regions = excitation_regions(celement_sg, "c+")
        rc = monotonous_cover(celement_sg, regions[0], regions)
        inside = set(regions[0].states) | rc.quiescent
        for state in celement_sg.states:
            if state not in inside:
                assert not rc.cover.evaluate(celement_sg.code(state))

    def test_mc_condition_3_monotonicity(self, two_er_sg):
        # Every region cover of x falls at most once inside its QR.
        from repro.synthesis.cover import synthesize_event_covers
        for event in ("x+", "x-"):
            for rc in synthesize_event_covers(two_er_sg, event):
                for state in rc.quiescent:
                    if rc.cover.evaluate(two_er_sg.code(state)):
                        continue
                    for _, target in two_er_sg.successors(state):
                        if target in rc.quiescent:
                            assert not rc.cover.evaluate(
                                two_er_sg.code(target))

    def test_code_sharing_regions_merge(self, two_er_sg):
        # The two ERs of x+ share binary codes with each other's
        # quiescent zones, so a generalized (merged) cover is produced
        # (footnote 3 of the paper).
        from repro.synthesis.cover import synthesize_event_covers
        covers = synthesize_event_covers(two_er_sg, "x-")
        assert len(covers) == 1
        assert len(covers[0].regions) == 2
        for region in covers[0].regions:
            for state in region.states:
                assert covers[0].cover.evaluate(two_er_sg.code(state))

    def test_per_region_cover_raises_when_codes_shared(self, two_er_sg):
        regions = excitation_regions(two_er_sg, "x-")
        with pytest.raises(CoverError):
            monotonous_cover(two_er_sg, regions[0], regions)

    def test_distinct_code_regions_stay_separate(self, two_er_sg):
        from repro.synthesis.cover import synthesize_event_covers
        covers = synthesize_event_covers(two_er_sg, "x+")
        assert len(covers) == 2
        assert all(len(rc.regions) == 1 for rc in covers)

    def test_support_restriction(self, celement_sg):
        regions = excitation_regions(celement_sg, "c+")
        rc = monotonous_cover(celement_sg, regions[0], regions,
                              support=["a", "b"])
        assert set(rc.cover.support) <= {"a", "b"}


class TestCompleteCover:
    def test_celement_is_state_holding(self, celement_sg):
        # The C element's next-state function needs c itself.
        assert complete_cover(celement_sg, "c") is None

    def test_with_self_support(self, celement_sg):
        cover, complement = complete_cover_with_self(celement_sg, "c")
        # classic majority: ab + c(a + b) — 6 literals as SOP.
        assert cover.literal_count() == 6
        assert complement.literal_count() == 6

    def test_combinational_signal(self, two_er_sg):
        # x = a + b works: x rises after a+ or b+, falls after a-/b-.
        pair = complete_cover(two_er_sg, "x")
        assert pair is not None
        cover, _ = pair
        assert "x" not in cover.support

    def test_inputs_rejected(self, celement_sg):
        with pytest.raises(CoverError):
            synthesize_signal(celement_sg, "a")


class TestSynthesizeSignal:
    def test_celement_sequential(self, celement_sg):
        impl = synthesize_signal(celement_sg, "c")
        assert not impl.is_combinational
        assert len(impl.set_covers) == 1
        assert len(impl.reset_covers) == 1
        assert impl.max_complexity() == 2

    def test_combinational_choice(self, two_er_sg):
        impl = synthesize_signal(two_er_sg, "x")
        assert impl.is_combinational
        assert impl.complete_complexity <= 2

    def test_synthesize_all_covers_outputs(self, celement_sg):
        impls = synthesize_all(celement_sg)
        assert set(impls) == {"c"}

    def test_cover_of_event(self, celement_sg):
        impl = synthesize_signal(celement_sg, "c")
        assert len(impl.cover_of_event("c+")) == 1
        assert impl.cover_of_event("c+")[0].cover == \
            SopCover.from_string("a b")
