"""Unit tests for the standard-C netlist and gate libraries."""

import pytest

from repro.boolean.sop import SopCover
from repro.errors import LibraryError
from repro.synthesis.cover import synthesize_all
from repro.synthesis.library import (FOUR_LITERAL, THREE_LITERAL,
                                     TWO_LITERAL, Gate, GateLibrary)
from repro.synthesis.netlist import Netlist


class TestGateLibrary:
    def test_bounds(self):
        with pytest.raises(LibraryError):
            GateLibrary(1)

    def test_fits(self):
        lib = GateLibrary(3)
        assert lib.fits_literals(3)
        assert not lib.fits_literals(4)
        assert lib.fits_cover(SopCover.from_string("a b + c"))

    def test_cells_grow_with_bound(self):
        names2 = {cell.name for cell in TWO_LITERAL.cells}
        names4 = {cell.name for cell in FOUR_LITERAL.cells}
        assert names2 < names4
        assert "AND2" in names2 and "XOR2" in names4
        assert "C2" in names2  # C element present by default

    def test_no_celement_variant(self):
        lib = GateLibrary(2, has_celement=False)
        assert "C2" not in {cell.name for cell in lib.cells}

    def test_cell_for(self):
        lib = GateLibrary(4)
        assert lib.cell_for(SopCover.from_string("a b")).name == "AND2"
        assert lib.cell_for(SopCover.from_string("a + b")).name == "OR2"
        assert lib.cell_for(SopCover.from_string("a b + c")).name == "AO21"
        assert lib.cell_for(
            SopCover.from_string("a b c d e")) is None

    def test_str(self):
        assert "2-literal" in str(TWO_LITERAL)


class TestNetlist:
    def test_celement_netlist(self, celement_sg):
        implementations = synthesize_all(celement_sg)
        netlist = Netlist("celement", implementations)
        assert len(netlist.c_elements) == 1
        assert len(netlist.cover_gates()) == 2
        celem = netlist.c_elements[0]
        assert celem.signal == "c"
        assert celem.set_net == "set_c_1"
        assert celem.reset_net == "reset_c_1"

    def test_combinational_netlist(self, two_er_sg):
        implementations = synthesize_all(two_er_sg)
        netlist = Netlist("twoer", implementations)
        assert not netlist.c_elements  # x is combinational
        assert any(g.role == "complete" for g in netlist.gates)

    def test_stats(self, celement_sg):
        netlist = Netlist("celement", synthesize_all(celement_sg))
        stats = netlist.stats()
        assert stats.c_elements == 1
        assert stats.literals == 4
        assert stats.max_complexity == 2
        assert stats.histogram == {2: 2}
        assert stats.histogram_row(7) == [2, 0, 0, 0, 0, 0]
        assert stats.cost_string() == "4/1"

    def test_oversized_detection(self, celement_sg):
        netlist = Netlist("celement", synthesize_all(celement_sg))
        assert netlist.fits(TWO_LITERAL)
        assert not netlist.oversized_gates(THREE_LITERAL)

    def test_pretty_mentions_cells(self, celement_sg):
        netlist = Netlist("celement", synthesize_all(celement_sg))
        text = netlist.pretty(TWO_LITERAL)
        assert "[AND2]" in text
        assert "C(set_c_1, reset_c_1)" in text

    def test_or_join_for_multiple_regions(self):
        # A signal with two set regions gets an or-join gate.
        from repro.stg.parser import parse_g
        from repro.sg.reachability import state_graph_of
        text = """
.model twoset
.inputs a b
.outputs x y
.graph
a+ x+
x+ y+
y+ a-
a- x-
x- b+
b+ x+/2
x+/2 y-
y- b-
b- x-/2
x-/2 a+
.marking { <x-/2,a+> }
.end
"""
        sg = state_graph_of(parse_g(text))
        implementations = synthesize_all(sg)
        netlist = Netlist("twoset", implementations)
        roles = {g.role for g in netlist.gates}
        # whether merged or joined, the netlist must be constructible
        assert "cover" in roles or "complete" in roles
