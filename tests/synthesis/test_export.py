"""Unit tests for netlist export (Verilog / .eqn / OR-join expansion)."""

import pytest

from repro.boolean.cube import Cube
from repro.boolean.sop import SopCover
from repro.synthesis.cover import synthesize_all
from repro.synthesis.export import (expand_or_joins, to_eqn, to_verilog,
                                    _verilog_expr)
from repro.synthesis.netlist import Netlist, NetlistGate


@pytest.fixture
def celement_netlist(celement_sg):
    return Netlist("celement", synthesize_all(celement_sg))


class TestExpandOrJoins:
    def _wide_join(self, width):
        cover = SopCover([Cube({f"n{i}": 1}) for i in range(width)])
        return NetlistGate("g_j", "j", cover, width, "or-join")

    def test_narrow_join_untouched(self, celement_netlist):
        gates = expand_or_joins(celement_netlist)
        assert len(gates) == len(celement_netlist.gates)

    def test_wide_join_split(self, celement_netlist):
        celement_netlist.gates.append(self._wide_join(5))
        gates = expand_or_joins(celement_netlist, max_fanin=2)
        joins = [g for g in gates if g.role == "or-join"]
        assert all(len(g.fanin) <= 2 for g in joins)
        # 5 leaves need 4 two-input OR gates.
        assert len(joins) == 4

    def test_split_preserves_function(self, celement_netlist):
        celement_netlist.gates.append(self._wide_join(5))
        gates = expand_or_joins(celement_netlist, max_fanin=2)
        values = {f"n{i}": i == 3 for i in range(5)}
        nets = dict(values)
        for gate in gates:
            if gate.role != "or-join":
                continue
            nets[gate.output] = any(nets[name] for name in gate.fanin)
        assert nets["j"] is True


class TestVerilog:
    def test_module_structure(self, celement_netlist):
        text = to_verilog(celement_netlist, ("a", "b"), ("c",))
        assert "module celement (" in text
        assert "input  wire a," in text
        assert "output wire c" in text
        assert "endmodule" in text

    def test_c_element_modelled(self, celement_netlist):
        text = to_verilog(celement_netlist, ("a", "b"), ("c",))
        assert "Muller C element for c" in text
        assert "if (set_c_1) c_state = 1'b1;" in text
        assert "else if (reset_c_1) c_state = 1'b0;" in text

    def test_expression_rendering(self):
        assert _verilog_expr(SopCover.from_string("a b'")) == "a & ~b"
        assert _verilog_expr(SopCover.from_string("a + b")) == "a | b"
        assert _verilog_expr(SopCover.from_string("a b + c")) == \
            "(a & b) | c"
        assert _verilog_expr(SopCover.zero()) == "1'b0"

    def test_hyphenated_names_sanitized(self, celement_netlist):
        celement_netlist.name = "my-circuit"
        text = to_verilog(celement_netlist, ("a", "b"), ("c",))
        assert "module my_circuit (" in text


class TestEqn:
    def test_equations(self, celement_netlist):
        text = to_eqn(celement_netlist)
        assert "set_c_1 = a*b;" in text
        assert "reset_c_1 = !a*!b;" in text
        assert "c = C(set_c_1, reset_c_1);" in text
