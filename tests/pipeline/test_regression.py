"""The pipeline reproduces the pre-refactor Table-1 battery exactly.

``_legacy_table1_row`` is a verbatim replica of the direct-call glue
that ``repro.report.table1_row`` used before the pipeline existed; the
regression contract is that the pipeline's row equals it field for
field, and that the formatted table text is identical however the
batch is executed.
"""

from typing import Dict, Optional, Tuple

import pytest

from repro.baselines.local_ack import map_local_ack
from repro.baselines.tech_decomp import tech_decomp_cost
from repro.bench_suite import benchmark
from repro.mapping.cost import implementation_cost
from repro.mapping.decompose import map_circuit
from repro.pipeline import Pipeline, PipelineConfig, STAGES
from repro.report import Table1Row, table1, table1_row
from repro.sg.reachability import state_graph_of
from repro.synthesis.cover import synthesize_all
from repro.synthesis.library import GateLibrary
from repro.synthesis.netlist import Netlist

FAST = ["half", "hazard", "chu133"]


def _legacy_table1_row(name, libraries=(2, 3, 4), config=None,
                       with_siegel=True) -> Table1Row:
    """The seed implementation: one flow re-run per battery entry."""
    stg = benchmark(name)
    sg = state_graph_of(stg)
    implementations = synthesize_all(sg)
    stats = Netlist(name, implementations).stats()

    inserted: Dict[int, Optional[int]] = {}
    si_cost: Optional[Tuple[int, int]] = None
    for k in libraries:
        result = map_circuit(sg, GateLibrary(k), config)
        inserted[k] = result.inserted_signals if result.success else None
        if k == 2 and result.success:
            si_cost = implementation_cost(result.implementations)

    siegel: Optional[int] = None
    if with_siegel:
        siegel_result = map_local_ack(sg, GateLibrary(2), config)
        siegel = (siegel_result.inserted_signals
                  if siegel_result.success else None)

    return Table1Row(
        name=name,
        histogram=stats.histogram_row(7),
        inserted=inserted,
        siegel_2lit=siegel,
        non_si_cost=tech_decomp_cost(implementations, 2),
        si_cost=si_cost,
    )


@pytest.mark.parametrize("name", FAST)
def test_row_identical_to_direct_calls(name):
    legacy = _legacy_table1_row(name, libraries=(2, 3),
                                with_siegel=True)
    pipelined = table1_row(name, libraries=(2, 3), with_siegel=True)
    assert pipelined == legacy


def test_table_text_identical_serial_vs_parallel():
    serial = table1(names=FAST, libraries=(2,), with_siegel=True,
                    jobs=1)
    parallel = table1(names=FAST, libraries=(2,), with_siegel=True,
                      jobs=2)
    assert serial[1] == parallel[1]
    assert serial[0] == parallel[0]


def test_table_survives_one_bad_circuit():
    rows, text = table1(names=["half", "no-such-circuit"],
                        libraries=(2,), with_siegel=False, jobs=1)
    assert [row.name for row in rows] == ["half"]
    assert "no-such-circuit: ERROR" in text


def test_run_record_telemetry():
    record = Pipeline(PipelineConfig(libraries=(2,),
                                     with_siegel=False)).run("half")
    stages = [timing.stage for timing in record.timings]
    assert stages == ["load", "reach", "synthesize", "map", "report"]
    assert all(stage in STAGES for stage in stages)
    assert record.total_seconds > 0
    assert record.row.name == "half"
    assert "ms" in record.timing_summary()
    assert record.mappings and (2, "global") in record.mappings
