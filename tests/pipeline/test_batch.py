"""BatchRunner: deterministic ordering and per-circuit fault isolation."""

import pytest

from repro.pipeline import BatchRunner, PipelineConfig

FAST = PipelineConfig(libraries=(2,), with_siegel=False,
                      keep_artifacts=False)
NAMES = ["half", "hazard", "chu133"]


def runner(jobs):
    return BatchRunner(FAST, jobs=jobs)


@pytest.mark.parametrize("jobs", [1, 2])
class TestBatch:
    def test_results_in_input_order(self, jobs):
        items = runner(jobs).run(NAMES)
        assert [item.name for item in items] == NAMES
        assert all(item.ok for item in items)
        assert all(item.record.row is not None for item in items)

    def test_fault_isolation(self, jobs):
        """A missing circuit errors its own slot, never the batch."""
        items = runner(jobs).run(["half", "no-such-circuit", "hazard"])
        assert [item.ok for item in items] == [True, False, True]
        assert "no-such-circuit" in items[1].error or \
            "FileNotFoundError" in items[1].error
        assert items[2].record.row.name == "hazard"

    def test_progress_callback_in_input_order(self, jobs):
        seen = []
        runner(jobs).run(NAMES, progress=seen.append)
        assert seen == NAMES

    def test_inline_g_text_source(self, jobs):
        from repro.bench_suite import benchmark
        from repro.stg.writer import write_g
        text = write_g(benchmark("half"))
        items = runner(jobs).run([("half", text)])
        assert items[0].ok
        assert items[0].record.row.name == "half"


def test_parallel_matches_serial():
    """Worker processes return exactly what in-process runs produce."""
    serial = runner(1).run(NAMES)
    parallel = runner(2).run(NAMES)
    for left, right in zip(serial, parallel):
        assert left.record.row == right.record.row


def test_records_are_lightweight_across_workers():
    """Batch records must not drag state graphs across the boundary."""
    items = runner(2).run(["half"])
    record = items[0].record
    assert record.mappings is None
    assert record.context is None
    assert record.stats["sg"] == 1


def test_serial_batch_honors_keep_artifacts():
    """jobs=1 crosses no process boundary: the caller's
    keep_artifacts=True must survive (it used to be forced off)."""
    from dataclasses import replace
    items = BatchRunner(replace(FAST, keep_artifacts=True),
                        jobs=1).run(["half"])
    record = items[0].record
    assert record.context is not None
    assert record.mappings is not None
    assert (2, "global") in record.mappings
    assert record.context.name == "half"


def test_parallel_batch_still_strips_artifacts():
    from dataclasses import replace
    items = BatchRunner(replace(FAST, keep_artifacts=True),
                        jobs=2).run(["half", "hazard"])
    assert all(item.record.context is None for item in items)
