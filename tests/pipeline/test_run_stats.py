"""``RunRecord.stats`` counter attribution.

The pipeline snapshots cache telemetry before and after a run and
stores the difference.  A backend may add counters to its telemetry
dict lazily — the first S3 upload creates ``s3_puts``, say — so a
counter can be present in the *after* snapshot only.  The regression
here: such counters must be attributed at full value, not dropped
(or, worse, crash the diff)."""

from typing import Dict

from repro.obs.metrics import use_registry
from repro.pipeline import Pipeline, PipelineConfig
from repro.pipeline.cache import ArtifactCache


class LateCounterCache(ArtifactCache):
    """Telemetry grows a counter only from the second snapshot on,
    mimicking a backend that materializes counters on first use."""

    def __init__(self) -> None:
        super().__init__()
        self._snapshots = 0

    def telemetry(self) -> Dict[str, int]:
        counters = super().telemetry()
        self._snapshots += 1
        if self._snapshots >= 2:
            counters["late_counter"] = 7
        return counters


def test_mid_run_counter_is_attributed_in_full():
    with use_registry():
        config = PipelineConfig(libraries=(2,), with_siegel=False,
                                keep_artifacts=False)
        record = Pipeline(config, cache=LateCounterCache()).run("half")
    assert record.stats["late_counter"] == 7


def test_preexisting_counters_still_diff():
    with use_registry():
        cache = ArtifactCache()
        config = PipelineConfig(libraries=(2,), with_siegel=False,
                                keep_artifacts=False)
        pipeline = Pipeline(config, cache=cache)
        pipeline.run("half")
        second = pipeline.run("half")
    # the warm second run serves everything from memory: its own diff
    # shows hits, not misses
    assert second.stats["cache_hits"] > 0
    assert second.stats["cache_misses"] == 0
