"""ArtifactCache concurrency: one compute per key, exact hit/miss
accounting, and recovery when the in-flight computation fails."""

import threading

from repro.pipeline.cache import ArtifactCache


class TestRaceAccounting:
    def test_concurrent_requests_compute_once(self):
        cache = ArtifactCache()
        computes = []
        release = threading.Event()
        started = threading.Event()

        def compute():
            computes.append(threading.get_ident())
            started.set()
            release.wait(timeout=5)
            return "artifact"

        results = []

        def worker():
            results.append(cache.get_or_compute("key", compute))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        threads[0].start()
        assert started.wait(timeout=5)
        for thread in threads[1:]:
            thread.start()
        release.set()
        for thread in threads:
            thread.join(timeout=5)

        assert results == ["artifact"] * 8
        assert len(computes) == 1            # the race never recomputes
        entries, hits, misses = cache.stats()
        assert (entries, hits, misses) == (1, 7, 1)

    def test_failed_compute_lets_waiters_retry(self):
        cache = ArtifactCache()
        attempts = []
        first_started = threading.Event()
        fail_now = threading.Event()

        def flaky():
            attempts.append(None)
            if len(attempts) == 1:
                first_started.set()
                fail_now.wait(timeout=5)
                raise RuntimeError("boom")
            return 42

        errors = []
        results = []

        def first():
            try:
                cache.get_or_compute("key", flaky)
            except RuntimeError as error:
                errors.append(error)

        def second():
            results.append(cache.get_or_compute("key", flaky))

        thread_a = threading.Thread(target=first)
        thread_a.start()
        assert first_started.wait(timeout=5)
        thread_b = threading.Thread(target=second)
        thread_b.start()
        fail_now.set()
        thread_a.join(timeout=5)
        thread_b.join(timeout=5)

        assert len(errors) == 1              # the owner saw the failure
        assert results == [42]               # the waiter retried and won
        assert len(attempts) == 2
        entries, hits, misses = cache.stats()
        assert (entries, hits, misses) == (1, 0, 1)

    def test_sequential_hit_miss_counts(self):
        cache = ArtifactCache()
        assert cache.get_or_compute("k", lambda: 1) == 1
        assert cache.get_or_compute("k", lambda: 2) == 1
        assert cache.get_or_compute("j", lambda: 3) == 3
        entries, hits, misses = cache.stats()
        assert (entries, hits, misses) == (2, 1, 2)
        assert "k" in cache and len(cache) == 2
        cache.clear()
        assert cache.stats() == (0, 0, 0)
