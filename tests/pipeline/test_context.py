"""SynthesisContext memoization: the shared-artifact contract."""

import pytest

import repro.pipeline.context as context_module
from repro.mapping.decompose import MapperConfig
from repro.pipeline import ArtifactCache, SynthesisContext

CIRCUIT = "hazard"


class Counter:
    """Call-counting wrapper around a module-level function."""

    def __init__(self, function):
        self.function = function
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        return self.function(*args, **kwargs)


@pytest.fixture
def reach_spy(monkeypatch):
    spy = Counter(context_module.state_graph_of)
    monkeypatch.setattr(context_module, "state_graph_of", spy)
    return spy


@pytest.fixture
def synth_spy(monkeypatch):
    spy = Counter(context_module.synthesize_all)
    monkeypatch.setattr(context_module, "synthesize_all", spy)
    return spy


class TestBatterySharing:
    def test_one_reachability_pass_for_whole_battery(self, reach_spy):
        """k = 2/3/4 plus the local-ack baseline: ONE state_graph_of."""
        context = SynthesisContext.from_benchmark(CIRCUIT)
        for literals in (2, 3, 4):
            context.mapping(literals)
        context.mapping(2, "local")
        assert reach_spy.calls == 1
        assert context.stats["sg"] == 1
        assert context.stats["map"] == 4

    def test_one_initial_synthesis_for_whole_battery(self, synth_spy):
        context = SynthesisContext.from_benchmark(CIRCUIT)
        for literals in (2, 3, 4):
            context.mapping(literals)
        context.mapping(2, "local")
        assert synth_spy.calls == 1
        assert context.stats["implementations"] == 1

    def test_repeated_mapping_is_cached(self):
        context = SynthesisContext.from_benchmark(CIRCUIT)
        first = context.mapping(2)
        second = context.mapping(2)
        assert first is second
        assert context.stats["map"] == 1

    def test_distinct_configs_not_conflated(self):
        context = SynthesisContext.from_benchmark(CIRCUIT)
        default = context.mapping(2)
        tuned = context.mapping(2, config=MapperConfig(max_divisors=24))
        assert default is not tuned
        assert context.stats["map"] == 2


class TestContentKeyedSharing:
    def test_same_circuit_shares_across_contexts(self, reach_spy):
        cache = ArtifactCache()
        left = SynthesisContext.from_benchmark(CIRCUIT, cache=cache)
        right = SynthesisContext.from_benchmark(CIRCUIT, cache=cache)
        assert left.state_graph() is right.state_graph()
        assert reach_spy.calls == 1
        assert cache.hits >= 1

    def test_different_circuits_do_not_collide(self):
        cache = ArtifactCache()
        half = SynthesisContext.from_benchmark("half", cache=cache)
        hazard = SynthesisContext.from_benchmark(CIRCUIT, cache=cache)
        assert half.content_key != hazard.content_key
        assert half.state_graph() is not hazard.state_graph()

    def test_content_key_is_load_path_independent(self, tmp_path):
        from repro.stg.writer import write_g
        from repro.bench_suite import benchmark
        path = tmp_path / "c.g"
        path.write_text(write_g(benchmark(CIRCUIT)))
        from_registry = SynthesisContext.from_benchmark(CIRCUIT)
        from_file = SynthesisContext.from_file(str(path))
        assert from_registry.content_key == from_file.content_key


class TestMappingEquivalence:
    def test_context_mapping_matches_direct_mapper(self):
        """Precomputed shared artifacts change nothing in the result."""
        from repro.mapping.decompose import map_circuit
        from repro.sg.reachability import state_graph_of
        from repro.synthesis.library import GateLibrary

        context = SynthesisContext.from_benchmark(CIRCUIT)
        shared = context.mapping(2)
        direct = map_circuit(
            state_graph_of(context.stg), GateLibrary(2))
        assert shared.success == direct.success
        assert shared.inserted_signals == direct.inserted_signals
        assert shared.message == direct.message
        assert (shared.netlist.stats().histogram
                == direct.netlist.stats().histogram)
        assert [step.divisor for step in shared.steps] \
            == [step.divisor for step in direct.steps]
