"""DiskArtifactCache: persistence, versioning, corruption tolerance,
warm-started pipelines and batch workers."""

import os
import pickle
import threading

import pytest

from repro.pipeline import (ArtifactCache, BatchRunner, DiskArtifactCache,
                            Pipeline, PipelineConfig)
from repro.pipeline.store import ARTIFACT_FORMATS, MISS, STORE_LAYOUT


KEY = ("sg", "f" * 64)


class TestStoreBasics:
    def test_round_trip(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        assert store.get(KEY) is MISS
        assert store.put(KEY, {"value": 42})
        assert store.get(KEY) == {"value": 42}
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.writes == 1
        assert store.stats.bytes_written > 0

    def test_persists_across_instances(self, tmp_path):
        DiskArtifactCache(str(tmp_path)).put(KEY, "artifact")
        fresh = DiskArtifactCache(str(tmp_path))
        assert fresh.get(KEY) == "artifact"

    def test_distinct_keys_do_not_alias(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        other = ("sg", "e" * 64)
        store.put(KEY, "a")
        store.put(other, "b")
        assert store.get(KEY) == "a"
        assert store.get(other) == "b"

    def test_unknown_kind_is_never_persisted(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        assert not store.put(("stg", "a" * 64), "raw")
        assert store.get(("stg", "a" * 64)) is MISS
        assert store.report().entries == 0

    def test_unpicklable_value_is_skipped_not_raised(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        assert not store.put(KEY, threading.Lock())
        assert store.stats.write_skips == 1
        assert store.get(KEY) is MISS

    def test_overwrite_is_atomic_latest_wins(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        store.put(KEY, "old")
        store.put(KEY, "new")
        assert store.get(KEY) == "new"
        assert store.report().entries == 1


class TestStoreResilience:
    """A bad store entry degrades to recompute, never to a crash."""

    def _entry_path(self, store):
        ((_, path),) = store._entries()
        return path

    def test_corrupt_entry_is_a_miss_and_reaped(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        store.put(KEY, "artifact")
        with open(self._entry_path(store), "wb") as handle:
            handle.write(b"not a pickle at all")
        assert store.get(KEY) is MISS
        assert store.stats.errors == 1
        assert store.report().entries == 0   # unlinked best-effort

    def test_truncated_entry_is_a_miss(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        store.put(KEY, "artifact" * 100)
        path = self._entry_path(store)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        assert store.get(KEY) is MISS

    def test_stale_format_is_ignored_then_overwritten(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        store.put(KEY, "artifact")
        path = self._entry_path(store)
        with open(path, "wb") as handle:
            pickle.dump({"format": ARTIFACT_FORMATS["sg"] + 1,
                         "key": repr(KEY), "payload": "artifact"},
                        handle)
        assert store.get(KEY) is MISS
        assert store.stats.stale == 1
        store.put(KEY, "recomputed")
        assert store.get(KEY) == "recomputed"

    def test_corrupt_entry_recomputes_through_pipeline(self, tmp_path):
        config = PipelineConfig(libraries=(2,), with_siegel=False,
                                keep_artifacts=False,
                                cache_dir=str(tmp_path))
        cold = Pipeline(config).run("half")
        store = DiskArtifactCache(str(tmp_path))
        for _, path in store._entries():
            with open(path, "wb") as handle:
                handle.write(b"\x80garbage")
        warm = Pipeline(config).run("half")
        assert warm.row == cold.row
        assert warm.stats["sg"] == 1         # recomputed, no crash
        assert warm.stats["disk_errors"] > 0


class TestStoreMaintenance:
    def test_report_counts_by_kind(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        store.put(("sg", "a" * 64), "x")
        store.put(("map", "a" * 64, 2, "global", ()), "y")
        report = store.report()
        assert report.entries == 2
        assert set(report.by_kind) == {"sg", "map"}
        assert "2 entries" in report.pretty()

    def test_clear_removes_entries_only(self, tmp_path):
        stranger = tmp_path / "notes.txt"
        stranger.write_text("keep me")
        store = DiskArtifactCache(str(tmp_path))
        store.put(KEY, "x")
        removed, freed = store.clear()
        assert removed == 1 and freed > 0
        assert store.get(KEY) is MISS
        assert stranger.read_text() == "keep me"

    def test_gc_reaps_stale_and_alien_entries(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        store.put(KEY, "good")
        # a stale-format entry of a valid kind
        stale = tmp_path / STORE_LAYOUT / "map" / "00" / ("0" * 64 + ".pkl")
        stale.parent.mkdir(parents=True)
        with open(stale, "wb") as handle:
            pickle.dump({"format": -1, "key": "k", "payload": 0}, handle)
        # an entry of a kind no current code persists
        alien = tmp_path / STORE_LAYOUT / "ghost" / "00" / ("1" * 64 + ".pkl")
        alien.parent.mkdir(parents=True)
        alien.write_bytes(b"whatever")
        # a leftover temp file from an interrupted write (old enough
        # that it cannot be an in-flight upload)...
        dead = tmp_path / STORE_LAYOUT / "sg" / ".tmp-dead.pkl"
        dead.write_bytes(b"")
        os.utime(dead, (0, 0))
        # ...and a *fresh* temp file: possibly a concurrent PUT on a
        # served store — gc must leave it alone
        live = tmp_path / STORE_LAYOUT / "sg" / ".tmp-inflight.pkl"
        live.write_bytes(b"")
        removed, _ = store.gc()
        assert removed == 3
        assert store.get(KEY) == "good"      # the healthy entry survives
        assert live.exists()                 # in-flight write untouched
        assert not dead.exists()

    def test_gc_leaves_newer_layouts_alone(self, tmp_path):
        """A shared store may be fed by a newer binary; this one's gc
        must not wipe entries it cannot judge."""
        store = DiskArtifactCache(str(tmp_path))
        store.put(KEY, "current")
        newer = tmp_path / "v999" / "sg" / "00" / ("2" * 64 + ".pkl")
        newer.parent.mkdir(parents=True)
        newer.write_bytes(b"a future binary's entry")
        older = tmp_path / "v0" / "sg" / "00" / ("3" * 64 + ".pkl")
        older.parent.mkdir(parents=True)
        older.write_bytes(b"an obsolete entry")
        removed, _ = store.gc()
        assert removed == 1
        assert newer.exists()
        assert not older.exists()

    def test_gc_reads_headers_not_payloads(self, tmp_path):
        """gc must never materialize payloads (mapping results carry
        whole state graphs)."""
        store = DiskArtifactCache(str(tmp_path))
        store.put(KEY, "fine")
        path = store._entries()[0][1]
        with open(path, "rb") as handle:
            data = handle.read()
        # sever the payload: a valid header followed by garbage
        import io
        stream = io.BytesIO(data)
        pickle.load(stream)
        with open(path, "wb") as handle:
            handle.write(data[: stream.tell()] + b"\x80broken payload")
        removed, _ = store.gc()
        assert removed == 0                  # header is valid: kept
        assert store.get(KEY) is MISS        # ...but get() catches it
        assert store.stats.errors == 1
        store = DiskArtifactCache(str(tmp_path))
        store.put(KEY, "old")
        ((_, path),) = store._entries()
        os.utime(path, (0, 0))               # epoch-old
        removed, _ = store.gc(max_age_seconds=3600)
        assert removed == 1


class TestLayeredCache:
    def test_memory_then_disk_then_compute(self, tmp_path):
        disk = DiskArtifactCache(str(tmp_path))
        cache = ArtifactCache(disk=disk)
        computes = []

        def compute():
            computes.append(1)
            return "value"

        assert cache.get_or_compute(KEY, compute) == "value"   # computed
        assert cache.get_or_compute(KEY, compute) == "value"   # memory
        fresh = ArtifactCache(disk=DiskArtifactCache(str(tmp_path)))
        assert fresh.get_or_compute(KEY, compute) == "value"   # disk
        assert len(computes) == 1
        assert fresh.misses == 0
        assert fresh.disk.stats.hits == 1

    def test_telemetry_without_disk_has_zero_counters(self):
        cache = ArtifactCache()
        telemetry = cache.telemetry()
        assert telemetry["disk_hits"] == 0
        assert telemetry["cache_misses"] == 0


BATTERY = PipelineConfig(libraries=(2,), with_siegel=True,
                         keep_artifacts=False)


class TestWarmStart:
    """The acceptance criterion: a warm second run is byte-identical
    and computes zero reach / synthesize artifacts."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_warm_batch_is_identical_and_compute_free(self, tmp_path,
                                                      jobs):
        from dataclasses import replace
        from repro.report import format_rows
        config = replace(BATTERY, cache_dir=str(tmp_path))
        names = ["half", "hazard"]
        runner = BatchRunner(config, jobs=jobs)
        cold = runner.run(names)
        warm = BatchRunner(config, jobs=jobs).run(names)
        assert all(item.ok for item in cold + warm)
        cold_rows = [item.record.row for item in cold]
        warm_rows = [item.record.row for item in warm]
        assert format_rows(warm_rows) == format_rows(cold_rows)
        for item in warm:
            assert item.record.stats["sg"] == 0
            assert item.record.stats["implementations"] == 0
            assert item.record.stats["map"] == 0
            assert item.record.stats["disk_hits"] > 0

    def test_workers_share_one_store(self, tmp_path):
        """A cold parallel batch populates one store: each circuit's
        artifacts are computed once across all workers."""
        from dataclasses import replace
        config = replace(BATTERY, cache_dir=str(tmp_path))
        BatchRunner(config, jobs=2).run(["half", "hazard"])
        report = DiskArtifactCache(str(tmp_path)).report()
        # 2 circuits x (sg, implementations, netlist, 2 mappings)
        assert report.by_kind["sg"][0] == 2
        assert report.by_kind["implementations"][0] == 2
        assert report.by_kind["map"][0] == 4

    def test_cache_dir_off_means_no_disk_io(self):
        record = Pipeline(BATTERY).run("half")
        assert record.stats["disk_hits"] == 0
        assert record.stats["disk_writes"] == 0


class TestGcSizeBudget:
    """``gc(max_bytes=...)``: LRU eviction by last-used mtime — the
    newest entries survive exactly up to the budget."""

    @staticmethod
    def _aged_entries(store, count):
        """``count`` entries with strictly increasing last-used times;
        returns their (path, size) newest-first."""
        entries = []
        for index in range(count):
            key = ("sg", f"{index:064x}")
            store.put(key, "payload-%04d" % index)
            path = store._path(key)
            os.utime(path, (1000.0 + index, 1000.0 + index))
            entries.append((path, os.path.getsize(path)))
        return list(reversed(entries))

    def test_newest_survive_exactly_up_to_budget(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        newest_first = self._aged_entries(store, 5)
        size = newest_first[0][1]              # all entries equal-sized
        budget = 2 * size + size // 2          # room for exactly two
        removed, freed = store.gc(max_bytes=budget)
        assert removed == 3
        assert freed == 3 * size
        survivors = {path for _, path in store._entries()}
        assert survivors == {path for path, _ in newest_first[:2]}

    def test_budget_larger_than_store_removes_nothing(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        self._aged_entries(store, 3)
        assert store.gc(max_bytes=10**9) == (0, 0)
        assert store.report().entries == 3

    def test_zero_budget_empties_the_store(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        self._aged_entries(store, 3)
        removed, _ = store.gc(max_bytes=0)
        assert removed == 3
        assert store.report().entries == 0

    def test_get_refreshes_last_used(self, tmp_path):
        """A *read* entry is recently-used: gc must keep it over a
        younger-written but never-read one."""
        store = DiskArtifactCache(str(tmp_path))
        old = ("sg", "a" * 64)
        young = ("sg", "b" * 64)
        store.put(old, "payload")
        store.put(young, "payload")
        for key, when in ((old, 1000.0), (young, 2000.0)):
            os.utime(store._path(key), (when, when))
        assert store.get(old) == "payload"     # touches mtime to now
        size = os.path.getsize(store._path(old))
        removed, _ = store.gc(max_bytes=size + size // 2)
        assert removed == 1
        assert store.get(old) == "payload"     # read entry survived
        assert store.get(young) is MISS

    def test_cli_gc_max_bytes(self, tmp_path, capsys):
        from repro.cli import main
        store = DiskArtifactCache(str(tmp_path))
        self._aged_entries(store, 4)
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-bytes", "0"]) == 0
        assert "removed 4 entries" in capsys.readouterr().out
        assert store.report().entries == 0


class TestMissingStoreDirectory:
    """Read-only operations on a store that does not exist yet: empty
    inventory, exit 0, and no directory materializes as a side
    effect."""

    def test_report_on_missing_root_is_empty(self, tmp_path):
        missing = str(tmp_path / "never" / "created")
        store = DiskArtifactCache(missing)
        report = store.report()
        assert report.entries == 0 and report.bytes == 0
        assert "0 entries" in report.pretty()
        assert not os.path.exists(missing)

    def test_constructor_is_side_effect_free(self, tmp_path):
        missing = str(tmp_path / "lazy")
        store = DiskArtifactCache(missing)
        assert not os.path.exists(missing)
        assert store.get(KEY) is MISS          # still nothing created
        assert not os.path.exists(missing)
        store.put(KEY, "x")                    # first write creates it
        assert os.path.exists(missing)

    def test_gc_and_clear_on_missing_root(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path / "void"))
        assert store.gc() == (0, 0)
        assert store.gc(max_bytes=0) == (0, 0)
        assert store.clear() == (0, 0)

    def test_cli_cache_stats_missing_dir_exits_zero(self, tmp_path,
                                                    capsys):
        from repro.cli import main
        missing = str(tmp_path / "no" / "such" / "store")
        assert main(["cache", "stats", "--cache-dir", missing]) == 0
        assert "0 entries, 0 bytes" in capsys.readouterr().out
        assert not os.path.exists(missing)


class TestStatsThreadSafety:
    """One store hammered by many threads (the serve daemon's handler
    pool): counter totals must be exact, not approximately right."""

    THREADS = 8
    ROUNDS = 50

    def test_concurrent_gets_and_puts_count_exactly(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        present = ("sg", "c" * 64)
        absent = ("sg", "d" * 64)
        store.put(present, "shared-payload")
        entry_bytes = store.stats.bytes_written
        barrier = threading.Barrier(self.THREADS)
        failures = []

        def hammer(index):
            try:
                barrier.wait()
                for round_number in range(self.ROUNDS):
                    assert store.get(present) == "shared-payload"
                    assert store.get(absent) is MISS
                    key = ("map", f"{index:02d}{round_number:04d}"
                           + "0" * 58, 2, "global", ())
                    assert store.put(key, (index, round_number))
            except Exception as error:  # pragma: no cover - fail loud
                failures.append(error)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        total = self.THREADS * self.ROUNDS
        assert store.stats.hits == total
        assert store.stats.misses == total
        assert store.stats.writes == total + 1
        assert store.stats.bytes_read == total * entry_bytes
        assert store.stats.errors == 0

    def test_concurrent_puts_of_one_key_all_count(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        barrier = threading.Barrier(self.THREADS)

        def overwrite():
            barrier.wait()
            for _ in range(self.ROUNDS):
                assert store.put(KEY, "same-value")

        threads = [threading.Thread(target=overwrite)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.stats.writes == self.THREADS * self.ROUNDS
        assert store.report().entries == 1     # idempotent on disk


def _badseq_g() -> str:
    from repro.stg.writer import write_g
    from tests.conftest import chained_sequencer_stg
    return write_g(chained_sequencer_stg())


BADSEQ_G = _badseq_g()


class TestCscArtifact:
    """The "csc" artifact kind through the persistent store: warm runs
    serve the solve (and its telemetry) from disk; a stale format
    stamp degrades to recompute, never to a crash."""

    def _config(self, tmp_path, method="regions"):
        from repro.mapping.decompose import MapperConfig
        return PipelineConfig(
            libraries=(2,), with_siegel=False, keep_artifacts=False,
            mapper=MapperConfig(solve_csc=True, csc_method=method),
            cache_dir=str(tmp_path))

    @pytest.mark.parametrize("method", ["regions", "blocks"])
    def test_warm_run_computes_zero_csc_artifacts(self, tmp_path,
                                                  method):
        config = self._config(tmp_path, method)
        cold = Pipeline(config).run(("badseq", BADSEQ_G))
        assert cold.stats["csc"] == 1
        assert cold.stats["signals_inserted"] >= 1
        warm = Pipeline(config).run(("badseq", BADSEQ_G))
        assert warm.stats["csc"] == 0            # served from the store
        assert warm.stats["sg"] == 0
        assert warm.stats["disk_hits"] > 0
        # telemetry rides on the artifact: a warm run still reports it
        assert warm.stats["signals_inserted"] == \
            cold.stats["signals_inserted"]
        assert warm.stats["candidates_evaluated"] == \
            cold.stats["candidates_evaluated"]
        assert warm.row == cold.row
        assert warm.row.csc_signals == cold.stats["signals_inserted"]
        report = DiskArtifactCache(str(tmp_path)).report()
        assert report.by_kind["csc"][0] == 1

    def test_methods_do_not_alias_in_the_store(self, tmp_path):
        regions = Pipeline(self._config(tmp_path, "regions")).run(
            ("badseq", BADSEQ_G))
        blocks = Pipeline(self._config(tmp_path, "blocks")).run(
            ("badseq", BADSEQ_G))
        # the second method must compute its own solve, not reuse the
        # first one's artifact
        assert regions.stats["csc"] == 1
        assert blocks.stats["csc"] == 1
        report = DiskArtifactCache(str(tmp_path)).report()
        assert report.by_kind["csc"][0] == 2

    def test_stale_csc_format_recomputes_not_crashes(self, tmp_path,
                                                     monkeypatch):
        config = self._config(tmp_path)
        cold = Pipeline(config).run(("badseq", BADSEQ_G))
        monkeypatch.setitem(ARTIFACT_FORMATS, "csc",
                            ARTIFACT_FORMATS["csc"] + 1)
        warm = Pipeline(config).run(("badseq", BADSEQ_G))
        assert warm.stats["csc"] == 1            # stale: recomputed
        assert warm.stats["disk_stale"] >= 1
        assert warm.row == cold.row
        assert warm.stats["signals_inserted"] == \
            cold.stats["signals_inserted"]


def write_v1_entry(store, key, value):
    """Plant bytes exactly as the pre-codec store wrote them: header
    without codec/raw_size stamps, payload as a raw pickle."""
    import pickle as _pickle
    from repro.pipeline.store import digest_of, kind_of
    header = {"format": ARTIFACT_FORMATS[kind_of(key)],
              "key": repr(key)}
    data = (_pickle.dumps(header, protocol=_pickle.HIGHEST_PROTOCOL)
            + _pickle.dumps(value, protocol=_pickle.HIGHEST_PROTOCOL))
    path = store.raw_path(kind_of(key), digest_of(key))
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(data)
    return path, data


class TestV1Migration:
    """Pre-refactor stores stay warm; entries migrate lazily on hit."""

    VALUE = {"states": ["0101" * 64] * 200}

    def test_v1_entry_hits_and_reencodes_in_place(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        path, v1_bytes = write_v1_entry(store, KEY, self.VALUE)
        assert store.get(KEY) == self.VALUE
        assert store.stats.hits == 1
        # the hit migrated the entry: smaller, codec-stamped
        from repro.pipeline.store import read_header
        with open(path, "rb") as handle:
            migrated = handle.read()
        assert len(migrated) < len(v1_bytes)
        assert read_header(migrated)[0]["codec"] == "zlib"
        assert store.stats.writes == 1
        # second hit reads the v2 entry and does NOT rewrite again
        assert store.get(KEY) == self.VALUE
        assert store.stats.writes == 1

    def test_identity_store_leaves_v1_entries_alone(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path), codec="identity")
        path, v1_bytes = write_v1_entry(store, KEY, self.VALUE)
        assert store.get(KEY) == self.VALUE
        with open(path, "rb") as handle:
            assert handle.read() == v1_bytes

    def test_gc_keeps_valid_v1_entries(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        write_v1_entry(store, KEY, self.VALUE)
        removed, _ = store.gc()
        assert removed == 0
        assert store.get(KEY) == self.VALUE

    def test_report_reads_v1_raw_size_from_the_body(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        _, v1_bytes = write_v1_entry(store, KEY, self.VALUE)
        report = store.report()
        assert report.entries == 1
        assert report.bytes == len(v1_bytes)
        assert report.raw_bytes < report.bytes   # payload < envelope

    def test_warm_pipeline_from_v1_store_computes_nothing(self,
                                                          tmp_path):
        """The acceptance criterion: a store written before this
        refactor still warm-starts the pipeline."""
        from dataclasses import replace
        config = replace(BATTERY, cache_dir=str(tmp_path))
        cold = Pipeline(config).run("half")
        assert cold.stats["sg"] == 1
        # rewrite every entry as its v1 (pre-codec) equivalent
        store = DiskArtifactCache(str(tmp_path))
        rewritten = 0
        for _, path in store._entries():
            from repro.pipeline.store import (decode_entry,
                                              read_header)
            with open(path, "rb") as handle:
                data = handle.read()
            header, offset = read_header(data)
            v1_header = {"format": header["format"],
                         "key": header["key"]}
            if "codec" in header:
                import zlib as _zlib
                payload = (_zlib.decompress(data[offset:])
                           if header["codec"] == "zlib"
                           else data[offset:])
            else:
                payload = data[offset:]
            with open(path, "wb") as handle:
                handle.write(pickle.dumps(
                    v1_header, protocol=pickle.HIGHEST_PROTOCOL)
                    + payload)
            rewritten += 1
        assert rewritten > 0
        warm = Pipeline(config).run("half")
        assert warm.stats["sg"] == 0
        assert warm.stats["implementations"] == 0
        assert warm.stats["map"] == 0
        assert warm.stats["disk_hits"] > 0
        assert warm.row == cold.row


class TestCompressionRatio:
    """The acceptance criterion: >= 2x on state-graph artifacts."""

    def test_sg_artifacts_compress_at_least_2x(self, tmp_path):
        from dataclasses import replace
        config = replace(BATTERY, cache_dir=str(tmp_path))
        for name in ("alloc-outbound", "chu133", "chu150"):
            Pipeline(config).run(name)
        report = DiskArtifactCache(str(tmp_path)).report()
        count, stored, raw = report.by_kind["sg"]
        assert count == 3
        assert raw >= 2 * stored
        # and the overall ratio survives the pretty-printer
        assert "compression" in report.pretty()

    def test_ratio_is_visible_per_kind(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        store.put(KEY, {"states": ["0101" * 64] * 200})
        pretty = store.report().pretty()
        assert any(line.split()[:1] == ["sg"]
                   for line in pretty.splitlines())
