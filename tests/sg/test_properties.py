"""Unit tests for the SG property suite."""

import pytest

from repro._util import FrozenVector
from repro.errors import CscViolation, SpeedIndependenceError
from repro.sg.graph import StateGraph
from repro.sg.properties import (assert_implementable,
                                 check_speed_independence,
                                 commutativity_violations,
                                 consistency_violations, csc_violations,
                                 determinism_violations,
                                 persistency_violations)


def vec(**kwargs):
    return FrozenVector(kwargs)


def chain_sg():
    """a+ then b+ then a- then b-, cyclic; all outputs."""
    sg = StateGraph("chain", [], ["a", "b"])
    codes = [vec(a=0, b=0), vec(a=1, b=0), vec(a=1, b=1), vec(a=0, b=1)]
    for i, code in enumerate(codes):
        sg.add_state(i, code)
    sg.add_arc(0, "a+", 1)
    sg.add_arc(1, "b+", 2)
    sg.add_arc(2, "a-", 3)
    sg.add_arc(3, "b-", 0)
    sg.set_initial(0)
    return sg


class TestCleanGraph:
    def test_all_checks_pass(self, celement_sg):
        report = check_speed_independence(celement_sg)
        assert report.implementable
        assert report.speed_independent
        assert not report.all_violations()
        assert bool(report)

    def test_chain_passes(self):
        report = check_speed_independence(chain_sg())
        assert report.implementable

    def test_assert_implementable_silent(self, celement_sg):
        assert_implementable(celement_sg)


class TestConsistency:
    def test_wrong_direction_detected(self):
        sg = StateGraph("bad", [], ["a"])
        sg.add_state(0, vec(a=1))
        sg.add_state(1, vec(a=0))
        sg.add_arc(0, "a+", 1)  # a+ from a=1 state: two violations
        sg.set_initial(0)
        problems = consistency_violations(sg)
        assert len(problems) >= 1

    def test_other_signal_changed_detected(self):
        sg = StateGraph("bad", [], ["a", "b"])
        sg.add_state(0, vec(a=0, b=0))
        sg.add_state(1, vec(a=1, b=1))
        sg.add_arc(0, "a+", 1)
        sg.set_initial(0)
        assert any("also changes" in p for p in consistency_violations(sg))


class TestDeterminism:
    def test_duplicate_label_detected(self):
        sg = StateGraph("bad", [], ["a", "b"])
        sg.add_state(0, vec(a=0, b=0))
        sg.add_state(1, vec(a=1, b=0))
        sg.add_state(2, vec(a=1, b=0))
        sg.add_arc(0, "a+", 1)
        sg.add_arc(0, "a+", 2)
        sg.set_initial(0)
        assert determinism_violations(sg)


class TestCommutativity:
    def test_diverging_diamond_detected(self):
        sg = StateGraph("bad", [], ["a", "b", "c"])
        sg.add_state(0, vec(a=0, b=0, c=0))
        sg.add_state(1, vec(a=1, b=0, c=0))
        sg.add_state(2, vec(a=0, b=1, c=0))
        sg.add_state(3, vec(a=1, b=1, c=0))
        sg.add_state(4, vec(a=1, b=1, c=1))
        # complete the second leg differently: a+;b+ -> 3 but b+;a+ -> 4
        sg.add_arc(0, "a+", 1)
        sg.add_arc(0, "b+", 2)
        sg.add_arc(1, "b+", 3)
        sg.add_arc(2, "a+", 4)  # wrong target (also inconsistent code)
        sg.set_initial(0)
        assert commutativity_violations(sg)

    def test_one_leg_only_is_not_commutativity_issue(self):
        sg = StateGraph("half", [], ["a", "b"])
        sg.add_state(0, vec(a=0, b=0))
        sg.add_state(1, vec(a=1, b=0))
        sg.add_state(2, vec(a=0, b=1))
        sg.add_arc(0, "a+", 1)
        sg.add_arc(0, "b+", 2)
        sg.set_initial(0)
        assert not commutativity_violations(sg)


class TestPersistency:
    def make_disabling_sg(self, disabled_signal_is_input):
        inputs = ["a"] if disabled_signal_is_input else []
        outputs = ["b"] + ([] if disabled_signal_is_input else ["a"])
        sg = StateGraph("bad", inputs, outputs)
        sg.add_state(0, vec(a=0, b=0))
        sg.add_state(1, vec(a=0, b=1))
        sg.add_state(3, vec(a=1, b=0))
        sg.add_state(4, vec(a=1, b=1))
        # a+ enabled at 0; firing b+ leads to 1 where a+ is gone —
        # the only non-persistency.  b+ survives a+ (0→3→4).
        sg.add_arc(0, "b+", 1)
        sg.add_arc(0, "a+", 3)
        sg.add_arc(3, "b+", 4)
        sg.add_arc(4, "a-", 1)
        sg.add_arc(1, "b-", 0)
        sg.set_initial(0)
        return sg

    def test_output_disabling_detected(self):
        sg = self.make_disabling_sg(disabled_signal_is_input=False)
        assert persistency_violations(sg)

    def test_input_disabling_tolerated(self):
        sg = self.make_disabling_sg(disabled_signal_is_input=True)
        assert not persistency_violations(sg)
        assert persistency_violations(sg, include_inputs=True)


class TestCsc:
    def test_same_code_different_outputs_detected(self):
        sg = StateGraph("bad", [], ["a", "b"])
        sg.add_state(0, vec(a=0, b=0))
        sg.add_state(1, vec(a=1, b=0))
        sg.add_state(2, vec(a=0, b=0))  # same code as 0
        sg.add_state(3, vec(a=0, b=1))
        sg.add_arc(0, "a+", 1)
        sg.add_arc(1, "a-", 2)
        sg.add_arc(2, "b+", 3)
        sg.add_arc(3, "b-", 0)
        sg.set_initial(0)
        assert csc_violations(sg)
        with pytest.raises(CscViolation):
            assert_implementable(sg)

    def test_same_code_same_outputs_ok(self, two_er_sg):
        assert not csc_violations(two_er_sg)
