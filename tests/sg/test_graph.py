"""Unit tests for the StateGraph data structure."""

import pytest

from repro._util import FrozenVector
from repro.errors import StgError
from repro.sg.graph import (Diamond, StateGraph, event_direction,
                            event_signal, opposite_event)


def vec(**kwargs):
    return FrozenVector(kwargs)


class TestEventHelpers:
    def test_event_signal(self):
        assert event_signal("req+") == "req"
        assert event_signal("a-") == "a"

    def test_event_direction(self):
        assert event_direction("a+") == "+"
        assert event_direction("a-") == "-"

    def test_opposite_event(self):
        assert opposite_event("a+") == "a-"
        assert opposite_event("a-") == "a+"


@pytest.fixture
def diamond_sg():
    """a+ and b+ concurrent from the initial state."""
    sg = StateGraph("diamond", ["a"], ["b"])
    sg.add_state("s0", vec(a=0, b=0))
    sg.add_state("sa", vec(a=1, b=0))
    sg.add_state("sb", vec(a=0, b=1))
    sg.add_state("st", vec(a=1, b=1))
    sg.add_arc("s0", "a+", "sa")
    sg.add_arc("s0", "b+", "sb")
    sg.add_arc("sa", "b+", "st")
    sg.add_arc("sb", "a+", "st")
    sg.set_initial("s0")
    return sg


class TestStructure:
    def test_signal_partition_disjoint(self):
        with pytest.raises(StgError):
            StateGraph("x", ["a"], ["a"])

    def test_code_must_cover_signals(self):
        sg = StateGraph("x", ["a"], ["b"])
        with pytest.raises(StgError):
            sg.add_state(0, vec(a=0))

    def test_duplicate_state_rejected(self, diamond_sg):
        with pytest.raises(StgError):
            diamond_sg.add_state("s0", vec(a=0, b=0))

    def test_arc_validation(self, diamond_sg):
        with pytest.raises(StgError):
            diamond_sg.add_arc("s0", "z+", "sa")
        with pytest.raises(StgError):
            diamond_sg.add_arc("nope", "a+", "sa")

    def test_duplicate_arc_ignored(self, diamond_sg):
        before = len(diamond_sg.successors("s0"))
        diamond_sg.add_arc("s0", "a+", "sa")
        assert len(diamond_sg.successors("s0")) == before

    def test_successor_unique(self, diamond_sg):
        assert diamond_sg.successor("s0", "a+") == "sa"
        assert diamond_sg.successor("s0", "a-") is None

    def test_enabled_sorted(self, diamond_sg):
        assert diamond_sg.enabled("s0") == ["a+", "b+"]

    def test_is_excited(self, diamond_sg):
        assert diamond_sg.is_excited("s0", "a")
        assert not diamond_sg.is_excited("st", "a")

    def test_predecessors(self, diamond_sg):
        preds = diamond_sg.predecessors("st")
        assert ("b+", "sa") in preds and ("a+", "sb") in preds


class TestAlgorithms:
    def test_reachable_from(self, diamond_sg):
        assert diamond_sg.reachable_from(["sa"]) == {"sa", "st"}

    def test_reachable_restricted(self, diamond_sg):
        allowed = {"s0", "sa"}
        assert diamond_sg.reachable_from(["s0"], allowed) == allowed

    def test_prune_unreachable(self, diamond_sg):
        diamond_sg.add_state("island", vec(a=0, b=0))
        assert diamond_sg.prune_unreachable() == 1
        assert "island" not in diamond_sg

    def test_connected_components(self, diamond_sg):
        parts = diamond_sg.connected_components({"s0", "st"})
        assert len(parts) == 2

    def test_diamonds_found(self, diamond_sg):
        diamonds = diamond_sg.diamonds()
        assert len(diamonds) == 1
        d = diamonds[0]
        assert d.bottom == "s0" and d.top == "st"
        assert {d.event_a, d.event_b} == {"a+", "b+"}
        assert set(d.states) == {"s0", "sa", "sb", "st"}
        assert d.path_a_first[1] in ("sa", "sb")

    def test_diamond_cache_invalidation(self, diamond_sg):
        assert len(diamond_sg.diamonds()) == 1
        diamond_sg.add_state("extra", vec(a=1, b=1))
        # adding a state alone cannot create a diamond
        assert len(diamond_sg.diamonds()) == 1

    def test_copy_equivalent(self, diamond_sg):
        clone = diamond_sg.copy()
        assert len(clone) == len(diamond_sg)
        assert clone.initial == diamond_sg.initial
        assert clone.enabled("s0") == diamond_sg.enabled("s0")

    def test_bfs_order_deterministic_and_complete(self, diamond_sg):
        order = diamond_sg.bfs_order()
        assert order[diamond_sg.initial] == 0
        assert sorted(order.values()) == list(range(len(diamond_sg)))
        assert diamond_sg.bfs_order() is order          # cached

    def test_bfs_order_invalidated_by_mutation(self, diamond_sg):
        order = diamond_sg.bfs_order()
        diamond_sg.add_state("extra", vec(a=1, b=1))
        diamond_sg.add_arc("st", "a-", "extra")
        fresh = diamond_sg.bfs_order()
        assert fresh is not order
        assert "extra" in fresh

    def test_bfs_order_shared_by_copy(self, diamond_sg):
        order = diamond_sg.bfs_order()
        clone = diamond_sg.copy()
        assert clone.bfs_order() is order
        # mutating the clone detaches only the clone's cache
        clone.add_state("extra", vec(a=1, b=1))
        assert clone.bfs_order() is not order
        assert diamond_sg.bfs_order() is order

    def test_relabel_bfs_names(self, diamond_sg):
        renamed = diamond_sg.relabel()
        assert renamed.initial == "s0"
        assert len(renamed) == len(diamond_sg)
        assert renamed.enabled("s0") == ["a+", "b+"]

    def test_to_dot_contains_states(self, diamond_sg):
        dot = diamond_sg.to_dot()
        assert "digraph" in dot and "a+" in dot
