"""Unit tests for excitation/switching/quiescent regions and triggers."""

import pytest

from repro.sg.regions import (all_excitation_regions, encoding_atoms,
                              event_cones, excitation_regions,
                              quiescent_region, quiescent_regions_by_event,
                              switching_region, trigger_events,
                              trigger_signals)


class TestExcitationRegions:
    def test_celement_single_er(self, celement_sg):
        regions = excitation_regions(celement_sg, "c+")
        assert len(regions) == 1
        (region,) = regions
        assert region.index == 1
        assert region.event == "c+"
        assert region.signal == "c"
        # c+ is excited exactly when a=b=1, c=0: one state.
        assert len(region) == 1
        (state,) = region.states
        assert celement_sg.code(state).as_dict() == {"a": 1, "b": 1, "c": 0}

    def test_input_regions_exist(self, celement_sg):
        # a+ is excited from the initial state until it fires; since b+
        # is concurrent, the ER spans 2 states (b=0 and b=1).
        regions = excitation_regions(celement_sg, "a+")
        assert len(regions) == 1
        assert len(regions[0]) == 2

    def test_two_separated_regions(self, two_er_sg):
        regions = excitation_regions(two_er_sg, "x+")
        assert len(regions) == 2
        assert {r.index for r in regions} == {1, 2}
        assert all(len(r) == 1 for r in regions)

    def test_region_indices_stable(self, two_er_sg):
        first = excitation_regions(two_er_sg, "x+")
        second = excitation_regions(two_er_sg, "x+")
        assert [sorted(map(repr, r.states)) for r in first] == \
            [sorted(map(repr, r.states)) for r in second]

    def test_all_excitation_regions_outputs_only(self, celement_sg):
        regions = all_excitation_regions(celement_sg)
        assert {r.event for r in regions} == {"c+", "c-"}

    def test_membership_protocol(self, celement_sg):
        (region,) = excitation_regions(celement_sg, "c+")
        (state,) = region.states
        assert state in region


class TestSwitchingRegion:
    def test_celement_sr(self, celement_sg):
        (region,) = excitation_regions(celement_sg, "c+")
        sr = switching_region(celement_sg, region)
        assert len(sr) == 1
        (state,) = sr
        assert celement_sg.code(state).as_dict() == {"a": 1, "b": 1, "c": 1}


class TestQuiescentRegion:
    def test_celement_qr(self, celement_sg):
        regions = excitation_regions(celement_sg, "c+")
        qr = quiescent_region(celement_sg, regions[0], regions)
        # After c+ fires, c stays 1 while a and b fall; c- becomes
        # excited only when a=b=0.  QR = {111, 011, 101} minus states
        # where c- is excited.
        codes = {celement_sg.code(s).bits(["a", "b", "c"]) for s in qr}
        assert codes == {"111", "011", "101"}

    def test_restricted_qr_disjoint(self, two_er_sg):
        pairs = quiescent_regions_by_event(two_er_sg, "x+")
        (r1, q1), (r2, q2) = pairs
        assert not (q1 & q2)

    def test_qr_excludes_excited_states(self, celement_sg):
        regions = excitation_regions(celement_sg, "c+")
        qr = quiescent_region(celement_sg, regions[0], regions)
        for state in qr:
            assert not celement_sg.is_excited(state, "c")


class TestTriggers:
    def test_celement_triggers(self, celement_sg):
        (region,) = excitation_regions(celement_sg, "c+")
        events = trigger_events(celement_sg, region)
        assert events == {"a+", "b+"}

    def test_trigger_signals(self, celement_sg):
        assert trigger_signals(celement_sg, "c") == {"a", "b"}

    def test_trigger_signals_two_er(self, two_er_sg):
        assert trigger_signals(two_er_sg, "x") == {"a", "b"}


class TestEncodingAtoms:
    def test_cone_is_sr_union_qr(self, celement_sg):
        (region,) = excitation_regions(celement_sg, "c+")
        ((label, cone),) = event_cones(celement_sg, "c+")
        assert label == "SR∪QR(c+)"
        expected = (switching_region(celement_sg, region)
                    | quiescent_region(celement_sg, region))
        assert cone == frozenset(expected)

    def test_multi_region_events_get_indexed_cones(self, two_er_sg):
        cones = event_cones(two_er_sg, "x+")
        assert len(cones) == 2
        assert {label for label, _ in cones} == \
            {"SR∪QR_1(x+)", "SR∪QR_2(x+)"}

    def test_atoms_are_deduplicated_and_nontrivial(self, celement_sg):
        atoms = encoding_atoms(celement_sg)
        seen = set()
        for label, states in atoms:
            assert states, label
            assert len(states) < len(celement_sg), label
            assert states not in seen, f"duplicate atom {label}"
            seen.add(states)

    def test_atoms_cover_all_three_families(self, celement_sg):
        labels = [label for label, _ in encoding_atoms(celement_sg)]
        assert any(label.startswith("SR∪QR(") for label in labels)
        assert any(label.startswith("ER(") for label in labels)
        assert any(label.startswith("[") and label.endswith("=1]")
                   for label in labels)

    def test_atoms_deterministic(self, two_er_sg):
        first = encoding_atoms(two_er_sg)
        second = encoding_atoms(two_er_sg)
        assert [(label, sorted(map(repr, states)))
                for label, states in first] == \
            [(label, sorted(map(repr, states)))
             for label, states in second]
