"""Property tests for the packed-integer encoding layer.

Random labelled state graphs (not necessarily consistent STGs — the
bitset layer is pure graph/code plumbing) drive the :class:`Encoding`
kernels against straightforward set-based reference implementations:
bitset round-trips, packed codes, forward closures, weakly connected
components, event targets and the region queries built on them.
"""

from typing import Dict, List, Set, Tuple

from hypothesis import given, settings, strategies as st

from repro._util import FrozenVector
from repro.boolean.minimize import _vector_int
from repro.sg.graph import StateGraph
from repro.sg.regions import (excitation_regions, quiescent_region,
                              switching_region, _stable_closure)

SIGNALS = ("a", "b", "c")
EVENTS = tuple(s + d for s in SIGNALS for d in "+-")


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    sg = StateGraph("prop", inputs=["a"], outputs=["b", "c"])
    for i in range(n):
        bits = draw(st.integers(0, 2 ** len(SIGNALS) - 1))
        sg.add_state(i, FrozenVector(
            {name: (bits >> k) & 1 for k, name in enumerate(SIGNALS)}))
    arcs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.sampled_from(EVENTS),
                  st.integers(0, n - 1)),
        max_size=3 * n, unique=True))
    for source, event, target in arcs:
        sg.add_arc(source, event, target)
    sg.set_initial(0)
    return sg


def reference_closure(sg: StateGraph, start: Set, allowed: Set) -> Set:
    closure = set(start) & allowed
    frontier = list(closure)
    while frontier:
        state = frontier.pop()
        for _, target in sg.successors(state):
            if target in allowed and target not in closure:
                closure.add(target)
                frontier.append(target)
    return closure


def reference_components(sg: StateGraph, states: Set) -> List[Set]:
    pool = set(states)
    components = []
    while pool:
        seed = pool.pop()
        component = {seed}
        frontier = [seed]
        while frontier:
            state = frontier.pop()
            neighbours = {t for _, t in sg.successors(state)} \
                | {s for _, s in sg.predecessors(state)}
            for other in neighbours & pool:
                pool.discard(other)
                component.add(other)
                frontier.append(other)
        components.append(component)
    return components


class TestEncodingKernels:
    @given(graphs(), st.integers(0, 2 ** 10 - 1))
    @settings(max_examples=150, deadline=None)
    def test_bitset_roundtrip(self, sg, raw):
        enc = sg.encoding()
        bits = raw & enc.full_mask
        states = enc.states_of(bits)
        assert enc.bitset(states) == bits
        assert states == sorted(states, key=enc.index.__getitem__)

    @given(graphs())
    @settings(max_examples=100, deadline=None)
    def test_packed_codes_match_vector_int(self, sg):
        enc = sg.encoding()
        # Bit order must be exactly the minimizer's packing over the
        # full signal support, so packed codes flow into minimize()
        # without translation.
        for state in sg.states:
            packed = enc.codes[enc.index[state]]
            assert packed == _vector_int(sg.code(state), sg.signals)
            assert enc.unpack(packed) == sg.code(state)
            assert enc.pack(sg.code(state)) == packed

    @given(graphs(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_project_matches_vector_int(self, sg, data):
        enc = sg.encoding()
        support = data.draw(st.permutations(SIGNALS))
        for state in sg.states:
            packed = enc.codes[enc.index[state]]
            assert enc.project(packed, support) \
                == _vector_int(sg.code(state), support)

    @given(graphs(), st.integers(0, 2 ** 10 - 1),
           st.integers(0, 2 ** 10 - 1))
    @settings(max_examples=150, deadline=None)
    def test_closure_forward_matches_reference(self, sg, raw_start,
                                               raw_allowed):
        enc = sg.encoding()
        start = raw_start & enc.full_mask
        allowed = raw_allowed & enc.full_mask
        expected = reference_closure(
            sg, set(enc.states_of(start)), set(enc.states_of(allowed)))
        assert set(enc.states_of(
            enc.closure_forward(start, allowed))) == expected

    @given(graphs(), st.integers(0, 2 ** 10 - 1))
    @settings(max_examples=150, deadline=None)
    def test_components_match_reference(self, sg, raw):
        enc = sg.encoding()
        bits = raw & enc.full_mask
        got = [set(enc.states_of(c)) for c in enc.components(bits)]
        expected = reference_components(sg, set(enc.states_of(bits)))
        assert sorted(map(sorted, got)) == sorted(map(sorted, expected))
        # ascending lowest-index order
        lows = [min(enc.index[s] for s in component) for component in got]
        assert lows == sorted(lows)

    @given(graphs(), st.sampled_from(EVENTS), st.integers(0, 2 ** 10 - 1))
    @settings(max_examples=150, deadline=None)
    def test_event_targets_matches_reference(self, sg, event, raw):
        enc = sg.encoding()
        sources = set(enc.states_of(raw & enc.full_mask))
        expected = {target for state in sources
                    for label, target in sg.successors(state)
                    if label == event}
        assert set(enc.states_of(enc.event_targets(
            event, enc.bitset(sources)))) == expected

    @given(graphs(), st.sampled_from(EVENTS))
    @settings(max_examples=100, deadline=None)
    def test_event_bits_matches_reference(self, sg, event):
        enc = sg.encoding()
        expected = {s for s in sg.states
                    if any(e == event for e, _ in sg.successors(s))}
        assert set(enc.states_of(enc.event_bits(event))) == expected


class TestRegionQueries:
    @given(graphs(), st.sampled_from(EVENTS))
    @settings(max_examples=100, deadline=None)
    def test_excitation_regions_match_reference(self, sg, event):
        excited = {s for s in sg.states
                   if any(e == event for e, _ in sg.successors(s))}
        regions = excitation_regions(sg, event)
        assert set().union(*(r.states for r in regions), set()) \
            == excited
        expected = reference_components(sg, excited)
        assert sorted(sorted(r.states) for r in regions) \
            == sorted(map(sorted, expected))
        assert [r.index for r in regions] \
            == list(range(1, len(regions) + 1))

    @given(graphs(), st.sampled_from(EVENTS))
    @settings(max_examples=100, deadline=None)
    def test_switching_and_quiescent_match_reference(self, sg, event):
        signal = event[:-1]
        for region in excitation_regions(sg, event):
            sr = switching_region(sg, region)
            assert sr == {t for s in region.states
                          for e, t in sg.successors(s) if e == event}
            stable = {s for s in sg.states
                      if not sg.is_excited(s, signal)}
            assert _stable_closure(sg, region) \
                == reference_closure(sg, sr, stable)
            # With no siblings the restricted QR is the closure itself.
            assert quiescent_region(sg, region) \
                == _stable_closure(sg, region)
