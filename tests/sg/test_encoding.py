"""Unit tests for :mod:`repro.sg.encoding`."""

import pytest

from repro._util import FrozenVector
from repro.errors import CscViolation
from repro.sg.encoding import (code_partition, excited_value_states,
                               next_state_sets, next_value, vectors_of)
from repro.sg.graph import StateGraph


def vec(**kwargs):
    return FrozenVector(kwargs)


class TestNextValue:
    def test_stable_states(self, celement_sg):
        for state in celement_sg.states:
            code = celement_sg.code(state)
            implied = next_value(celement_sg, state, "c")
            if celement_sg.is_excited(state, "c"):
                assert implied == 1 - code["c"]
            else:
                assert implied == code["c"]

    def test_next_state_sets_partition(self, celement_sg):
        on, off = next_state_sets(celement_sg, "c")
        assert not (set(on) & set(off))
        assert len(on) + len(off) == len(
            {celement_sg.code(s) for s in celement_sg.states})

    def test_csc_violation_detected(self):
        sg = StateGraph("bad", [], ["a", "b"])
        sg.add_state(0, vec(a=0, b=0))
        sg.add_state(1, vec(a=1, b=0))
        sg.add_state(2, vec(a=0, b=0))  # same code, different future
        sg.add_state(3, vec(a=0, b=1))
        sg.add_arc(0, "a+", 1)
        sg.add_arc(1, "a-", 2)
        sg.add_arc(2, "b+", 3)
        sg.add_arc(3, "b-", 0)
        sg.set_initial(0)
        # state 0 implies a rises (next=1); state 2 implies a stays 0.
        with pytest.raises(CscViolation):
            next_state_sets(sg, "a")


class TestHelpers:
    def test_vectors_of_deduplicates(self, two_er_sg):
        all_vectors = vectors_of(two_er_sg, two_er_sg.states)
        assert len(all_vectors) == len(set(all_vectors))
        assert len(all_vectors) <= len(two_er_sg)

    def test_code_partition_covers_states(self, two_er_sg):
        partition = code_partition(two_er_sg)
        total = sum(len(states) for states in partition.values())
        assert total == len(two_er_sg)
        # two_er has code-sharing states by construction
        assert any(len(states) > 1 for states in partition.values())

    def test_excited_value_states(self, celement_sg):
        rising = excited_value_states(celement_sg, "c", "+")
        assert len(rising) == 1
        (state,) = rising
        assert celement_sg.code(state).as_dict() == {
            "a": 1, "b": 1, "c": 0}
