"""Unit tests for STG → state-graph reachability and encoding."""

import pytest

from repro.errors import ConsistencyError
from repro.sg.reachability import state_graph_of
from repro.stg.parser import parse_g


class TestCElement(object):
    def test_state_count(self, celement_sg):
        # C element: 2 concurrent inputs + 1 output; the classic SG has
        # 4 rising-phase states + 4 falling-phase states.
        assert len(celement_sg) == 8

    def test_initial_code_inferred(self, celement_sg):
        code = celement_sg.code(celement_sg.initial)
        assert code.as_dict() == {"a": 0, "b": 0, "c": 0}

    def test_arcs_flip_exactly_one_signal(self, celement_sg):
        for state in celement_sg.states:
            before = celement_sg.code(state)
            for event, target in celement_sg.successors(state):
                after = celement_sg.code(target)
                differing = [s for s in celement_sg.signals
                             if before[s] != after[s]]
                assert differing == [event[:-1]]

    def test_signal_partition_carried_over(self, celement_sg):
        assert celement_sg.inputs == ("a", "b")
        assert celement_sg.outputs == ("c",)

    def test_initial_state_is_initial_marking(self, celement_stg,
                                              celement_sg):
        assert celement_sg.initial == celement_stg.net.initial_marking


class TestConsistencyInference:
    def test_inconsistent_stg_rejected(self):
        # b rises twice with no fall in between.
        text = """
.model bad
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b+/2
b+/2 a+
.marking { <b+/2,a+> }
.end
"""
        with pytest.raises(ConsistencyError):
            state_graph_of(parse_g(text))

    def test_initial_value_conflict_rejected(self):
        # A choice place enables both a+ and a- in the very same
        # marking: the rising edge implies a=0 initially, the falling
        # edge a=1.
        text = """
.model conflict
.outputs a
.graph
p0 a+
p0 a-
a+ p1
a- p1
p1 a+/2
a+/2 p0
.marking { p0 }
.end
"""
        with pytest.raises(ConsistencyError):
            state_graph_of(parse_g(text))

    def test_state_limit(self, celement_stg):
        with pytest.raises(ConsistencyError):
            state_graph_of(celement_stg, max_states=3)

    def test_multiple_instances_consistent(self, two_er_sg):
        # x fires twice per cycle through distinct transitions; the
        # labelling must still alternate.
        assert len(two_er_sg) == 8


class TestUnsafeNets:
    def test_unsafe_net_detected(self):
        from repro.errors import PetriNetError
        text = """
.model unsafe
.outputs a b
.graph
a+ b+
a+ b-
b+ a-
b- a-
a- a+
.marking { <a-,a+> }
.end
"""
        # firing a+ puts tokens toward both b+ and b-; b+ then b- puts
        # two tokens on the place before a- ... the net is not 1-safe.
        with pytest.raises((PetriNetError, ConsistencyError)):
            state_graph_of(parse_g(text))
