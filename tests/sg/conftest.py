"""Shared fixtures: small reference STGs and their state graphs."""

import pytest

from repro.stg.parser import parse_g
from repro.sg.reachability import state_graph_of

CELEMENT_G = """
.model celement
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a-
c+ b-
a- c-
b- c-
c- a+
c- b+
.marking { <c-,a+> <c-,b+> }
.end
"""

# Two alternating handshakes sharing one output: x toggles between the
# a-handshake and the b-handshake.  Gives an event (x+) with two
# separated excitation regions.
TWO_ER_G = """
.model twoer
.inputs a b
.outputs x
.graph
a+ x+
x+ a-
a- x-
x- b+
b+ x+/2
x+/2 b-
b- x-/2
x-/2 a+
.marking { <x-/2,a+> }
.end
"""


@pytest.fixture
def celement_stg():
    return parse_g(CELEMENT_G)


@pytest.fixture
def celement_sg(celement_stg):
    return state_graph_of(celement_stg)


@pytest.fixture
def two_er_sg():
    return state_graph_of(parse_g(TWO_ER_G))
