"""Regression tests for the determinism fixes this analyzer forced.

Each test pins the *repaired* behavior of a site the first full lint
run flagged: filesystem enumeration no longer leaks directory order,
arbitrary-set-element selections are now canonical.
"""

import os

import pytest

from repro._util import FrozenVector
from repro.boolean.minimize import minimize
from repro.errors import CoverError
from repro.pipeline import DiskArtifactCache
from repro.pipeline import store as store_module
from repro.sg.graph import StateGraph


def vec(**kwargs):
    return FrozenVector(kwargs)


class TestStoreInventoryOrder:
    def test_entries_ignore_directory_order(self, tmp_path,
                                            monkeypatch):
        """_entries() must return the same inventory whatever order
        the filesystem hands names back in."""
        store = DiskArtifactCache(str(tmp_path))
        for digest in ("a" * 64, "b" * 64, "c" * 64):
            assert store.put(("sg", digest), {"d": digest})
        forward = store._entries()

        real_walk = os.walk

        def adversarial_walk(top, **kwargs):
            for dirpath, dirnames, filenames in real_walk(top,
                                                          **kwargs):
                yield (dirpath, list(reversed(dirnames)),
                       list(reversed(filenames)))

        monkeypatch.setattr(store_module.os, "walk", adversarial_walk)
        assert store._entries() == forward

    def test_entries_are_name_sorted(self, tmp_path):
        store = DiskArtifactCache(str(tmp_path))
        for digest in ("c" * 64, "a" * 64, "b" * 64):
            assert store.put(("sg", digest), {"d": digest})
        names = [os.path.basename(path)
                 for _, path in store._entries()]
        assert names == sorted(names)


class TestComponentSeedOrder:
    def _sg(self):
        sg = StateGraph("two-islands", ["a"], ["b"])
        for name in ("s0", "s1", "t0", "t1"):
            sg.add_state(name, vec(a=0, b=0))
        sg.add_arc("s0", "a+", "s1")
        sg.add_arc("t0", "a+", "t1")
        return sg

    def test_component_order_is_canonical(self):
        """The component list is ordered by each component's repr-least
        seed — not by hash-seed-dependent set.pop()."""
        sg = self._sg()
        parts = sg.connected_components({"t1", "s0", "t0", "s1"})
        assert parts == [{"s0", "s1"}, {"t0", "t1"}]

    def test_component_order_ignores_input_order(self):
        sg = self._sg()
        one = sg.connected_components(["s0", "s1", "t0", "t1"])
        two = sg.connected_components(["t1", "t0", "s1", "s0"])
        assert one == two


class TestCanonicalWitnesses:
    def test_overlap_error_names_the_least_vector(self):
        """minimize() reports the *minimum* overlapping vector, not an
        arbitrary set element."""
        on = [vec(x=0, y=1), vec(x=1, y=1)]
        off = [vec(x=1, y=1), vec(x=0, y=1), vec(x=1, y=0)]
        with pytest.raises(CoverError) as excinfo:
            minimize(on, off, support=("x", "y"))
        # min of {01-packed=2, 11-packed=3} is 2 -> bits printed
        # LSB-first as "01"
        assert "vector 01" in str(excinfo.value)
