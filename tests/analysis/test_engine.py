"""Engine behavior: suppressions, parse errors, file enumeration."""

from pathlib import Path

from repro.analysis import lint_paths, lint_source
from repro.analysis.engine import iter_source_files

BUGGY = """\
pool = set([1, 2, 3])
first = list(pool)
"""


class TestSuppressions:
    def test_targeted_suppression(self):
        source = BUGGY.replace(
            "first = list(pool)",
            "first = list(pool)  # si-lint: disable=det-unsorted-iteration")
        assert lint_source(source, "t.py") == []

    def test_blanket_suppression(self):
        source = BUGGY.replace(
            "first = list(pool)",
            "first = list(pool)  # si-lint: disable")
        assert lint_source(source, "t.py") == []

    def test_wrong_rule_does_not_suppress(self):
        source = BUGGY.replace(
            "first = list(pool)",
            "first = list(pool)  # si-lint: disable=exc-broad-degrade")
        findings = lint_source(source, "t.py")
        assert [f.rule for f in findings] == ["det-unsorted-iteration"]

    def test_other_lines_unaffected(self):
        source = ("# si-lint: disable\n" + BUGGY)
        findings = lint_source(source, "t.py")
        assert [f.rule for f in findings] == ["det-unsorted-iteration"]


class TestParseErrors:
    def test_syntax_error_becomes_finding(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert len(findings) == 1
        assert findings[0].rule == "parse-error"
        assert findings[0].severity == "error"
        assert findings[0].path == "bad.py"


class TestFileEnumeration:
    def _tree(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "a.py").write_text("y = 2\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("")
        # a build-artifact 'dist' dir is skipped ...
        (tmp_path / "dist").mkdir()
        (tmp_path / "dist" / "junk.py").write_text("z = 3\n")
        # ... but a 'dist' *package* is real source
        (tmp_path / "pkg" / "dist").mkdir()
        (tmp_path / "pkg" / "dist" / "__init__.py").write_text("")
        return tmp_path

    def test_sorted_and_skips(self, tmp_path):
        root = self._tree(tmp_path)
        files = [Path(p).relative_to(root).as_posix()
                 for p in iter_source_files(str(root))]
        assert files == ["pkg/a.py", "pkg/b.py",
                         "pkg/dist/__init__.py"]

    def test_single_file(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        assert list(iter_source_files(str(target))) == [str(target)]


class TestLintPaths:
    def test_paths_are_root_relative_posix(self, tmp_path):
        (tmp_path / "mod.py").write_text(BUGGY)
        findings = lint_paths([str(tmp_path)], root=str(tmp_path))
        assert [f.path for f in findings] == ["mod.py"]

    def test_findings_sorted_by_location(self, tmp_path):
        (tmp_path / "b.py").write_text(BUGGY)
        (tmp_path / "a.py").write_text(BUGGY)
        findings = lint_paths([str(tmp_path)], root=str(tmp_path))
        assert [f.path for f in findings] == ["a.py", "b.py"]
