"""Baseline semantics: matching, counts, persistence."""

import json

import pytest

from repro.analysis import Baseline, BaselineEntry, Finding


def finding(rule="det-unsorted-iteration", path="m.py", line=3,
            code="x = list(pool)"):
    return Finding(rule=rule, path=path, line=line, col=1,
                   severity="error", message="msg", hint="", code=code)


class TestSplit:
    def test_matching_finding_is_accepted(self):
        base = Baseline([BaselineEntry(
            rule="det-unsorted-iteration", path="m.py",
            code="x = list(pool)", count=1, justification="ok")])
        new, accepted = base.split([finding()])
        assert new == [] and len(accepted) == 1

    def test_line_drift_still_matches(self):
        """Keys use the stripped source line, not the line number."""
        base = Baseline.from_findings([finding(line=3)])
        new, accepted = base.split([finding(line=47)])
        assert new == [] and len(accepted) == 1

    def test_changed_code_is_new(self):
        base = Baseline.from_findings([finding()])
        new, _ = base.split([finding(code="y = tuple(pool)")])
        assert len(new) == 1

    def test_count_allowance_and_overflow(self):
        base = Baseline([BaselineEntry(
            rule="det-unsorted-iteration", path="m.py",
            code="x = list(pool)", count=2)])
        new, accepted = base.split(
            [finding(line=1), finding(line=2), finding(line=3)])
        assert len(accepted) == 2 and len(new) == 1


class TestPersistence:
    def test_round_trip(self, tmp_path):
        target = str(tmp_path / "baseline.json")
        base = Baseline.from_findings([finding()])
        base.save(target)
        loaded = Baseline.load(target)
        assert [e.to_json() for e in loaded.entries] == \
            [e.to_json() for e in base.entries]

    def test_rewrite_preserves_justifications(self):
        previous = Baseline([BaselineEntry(
            rule="det-unsorted-iteration", path="m.py",
            code="x = list(pool)", count=1,
            justification="reviewed: singleton set")])
        rebuilt = Baseline.from_findings(
            [finding(), finding(rule="exc-broad-degrade",
                                code="except Exception:")],
            previous=previous)
        by_rule = {e.rule: e for e in rebuilt.entries}
        assert (by_rule["det-unsorted-iteration"].justification
                == "reviewed: singleton set")
        assert (by_rule["exc-broad-degrade"].justification
                == "TODO: justify")

    def test_unsupported_version_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(str(target))

    def test_not_a_baseline_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text("[]")
        with pytest.raises(ValueError, match="entries"):
            Baseline.load(str(target))
