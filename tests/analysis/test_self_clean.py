"""The repo lints itself: ``si-mapper lint src/repro`` must be clean
against the committed baseline, wherever pytest is invoked from."""

from pathlib import Path

import pytest

import repro
from repro.analysis import Baseline, lint_paths

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "lint-baseline.json"


@pytest.mark.skipif(not BASELINE.exists(),
                    reason="not running from a source checkout")
def test_source_tree_is_clean_against_baseline():
    findings = lint_paths([str(REPO_ROOT / "src" / "repro")],
                          root=str(REPO_ROOT))
    new, accepted = Baseline.load(str(BASELINE)).split(findings)
    assert new == [], "\n".join(f.render() for f in new)


@pytest.mark.skipif(not BASELINE.exists(),
                    reason="not running from a source checkout")
def test_baseline_is_justified_and_tight():
    """Every accepted finding carries a real justification, and the
    baseline holds no stale entries the analyzer no longer reports."""
    base = Baseline.load(str(BASELINE))
    for entry in base.entries:
        assert entry.justification.strip(), entry.key
        assert "TODO" not in entry.justification, entry.key
    findings = lint_paths([str(REPO_ROOT / "src" / "repro")],
                          root=str(REPO_ROOT))
    _, accepted = base.split(findings)
    total_allowed = sum(e.count for e in base.entries)
    assert len(accepted) == total_allowed, (
        "stale baseline entries: the analyzer reports fewer findings "
        "than the baseline accepts — re-run lint --write-baseline")
