"""Fixture-driven rule tests.

Each fixture module under ``fixtures/`` marks every line the analyzer
must flag with a trailing ``# expect: <rule-id>`` comment
(comma-separated for several rules on one line).  The test asserts
*exact* agreement between markers and findings, so unmarked lines
double as false-positive regression checks: a rule that starts firing
on a clean pattern fails the same test as one that goes blind.
"""

import re
from pathlib import Path

import pytest

from repro.analysis import lint_source

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT = re.compile(r"#\s*expect:\s*([a-z0-9\-]+(?:\s*,\s*[a-z0-9\-]+)*)")


def expected_findings(source):
    expected = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT.search(line)
        if match:
            for rule in match.group(1).split(","):
                expected.add((lineno, rule.strip()))
    return expected


def fixture_files():
    return sorted(FIXTURES.glob("*.py"))


@pytest.mark.parametrize("fixture", fixture_files(),
                         ids=lambda path: path.stem)
def test_fixture_findings_match_markers(fixture):
    source = fixture.read_text(encoding="utf-8")
    expected = expected_findings(source)
    findings = lint_source(source, fixture.name)
    actual = {(f.line, f.rule) for f in findings}
    missing = expected - actual
    unexpected = actual - expected
    assert not missing, f"rules went blind: {sorted(missing)}"
    assert not unexpected, f"false positives: {sorted(unexpected)}"


def test_corpus_covers_all_rule_families():
    """Every rule family has at least one true positive *and* the
    fixture set contains unflagged (false-positive-guard) code."""
    covered = set()
    for fixture in fixture_files():
        covered |= {rule for _, rule in
                    expected_findings(fixture.read_text("utf-8"))}
    assert covered >= {
        "det-unsorted-iteration", "det-unsorted-listing",
        "det-impure-key",
        "conc-handler-shared-write", "conc-unlocked-counter",
        "pickle-unrestricted-load",
        "exc-swallow-interrupt", "exc-broad-degrade",
        "obs-unlocked-instrument",
    }


def test_pr2_bug_class_is_the_acceptance_fixture():
    """The historical cover bug — first match out of an unsorted set —
    must be caught, and its sorted repair must pass."""
    source = (FIXTURES / "det_pr2_cover.py").read_text("utf-8")
    findings = lint_source(source, "det_pr2_cover.py")
    flagged_scopes = {f.line for f in findings
                      if f.rule == "det-unsorted-iteration"}
    buggy_line = next(
        lineno for lineno, line in
        enumerate(source.splitlines(), start=1)
        if "for state in quiescent:  # expect" in line)
    assert buggy_line in flagged_scopes
    assert all("fp_" not in f.code for f in findings)
