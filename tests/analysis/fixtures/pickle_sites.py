"""Pickle-safety fixtures: deserialization outside the sanctioned
module (this file is not ``repro/dist/envelope.py``, so every load
site here is a finding)."""

import json
import pickle


def tp_raw_loads(data):
    return pickle.loads(data)  # expect: pickle-unrestricted-load


def tp_raw_load(stream):
    return pickle.load(stream)  # expect: pickle-unrestricted-load


def tp_unpickler_call(stream):
    return pickle.Unpickler(stream).load()  # expect: pickle-unrestricted-load


class TpCustomUnpickler(pickle.Unpickler):  # expect: pickle-unrestricted-load
    def find_class(self, module, name):
        raise ValueError("nope")


def fp_serialization_only(value):
    return pickle.dumps(value)


def fp_json_loads(data):
    return json.loads(data)
