"""Concurrency fixtures: threaded request handlers and counters."""

import threading
from http.server import BaseHTTPRequestHandler


class TpHandler(BaseHTTPRequestHandler):
    def do_POST(self):
        self.server.jobs["x"] = 1  # expect: conc-handler-shared-write
        self.server.total += 1  # expect: conc-handler-shared-write
        self.server.log.append("posted")  # expect: conc-handler-shared-write


class FpHandler(BaseHTTPRequestHandler):
    def do_POST(self):
        with self.server.lock:
            self.server.jobs["x"] = 1
        self.server.store.stats.add(hits=1)
        self.body = b"local to this request"
        self.count = 0


class TpCounters:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def record(self):
        self.hits += 1  # expect: conc-unlocked-counter


class FpCounters:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def record(self):
        with self._lock:
            self.hits += 1


def tp_stats_field_mutation(store):
    store.stats.hits += 1  # expect: conc-unlocked-counter


def fp_locked_mixin(store):
    store.stats.add(hits=1)


class FpPlainClass:
    """No lock owned: bare += on own attributes is single-threaded."""

    def __init__(self):
        self.calls = 0

    def record(self):
        self.calls += 1
