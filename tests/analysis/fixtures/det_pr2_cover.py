"""The PR-2 bug class: an unsorted set feeding a cover decision.

``_monotonicity_violation`` iterated a ``set`` of quiescent states and
returned the *first* violating one — so which witness drove the cover
decision (and hence the synthesized netlist) depended on
``PYTHONHASHSEED``.  This fixture is the determinism rule's acceptance
test: the buggy shape must be flagged, the fixed shape must not.
"""


def tp_first_violation_buggy(states, cover):
    quiescent = {s for s in states if s.quiescent}
    for state in quiescent:  # expect: det-unsorted-iteration
        if cover.evaluate(state.code):
            return state
    return None


def fp_first_violation_fixed(states, cover):
    quiescent = {s for s in states if s.quiescent}
    for state in sorted(quiescent, key=repr):
        if cover.evaluate(state.code):
            return state
    return None


def fp_any_violation(states, cover):
    quiescent = {s for s in states if s.quiescent}
    return any(cover.evaluate(s.code) for s in quiescent)
