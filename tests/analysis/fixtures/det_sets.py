"""Determinism fixtures: set iteration, true and false positives."""


def tp_append_from_set(items):
    chosen = {x for x in items if x > 0}
    out = []
    for value in chosen:  # expect: det-unsorted-iteration
        out.append(value)
    return out


def tp_materialize_set(items):
    pool = set(items)
    return list(pool)  # expect: det-unsorted-iteration


def tp_listcomp_from_set(items):
    pool = frozenset(items)
    return [x * 2 for x in pool]  # expect: det-unsorted-iteration


def tp_join_generator(names):
    pool = set(names)
    return ",".join(str(n) for n in pool)  # expect: det-unsorted-iteration


def tp_set_pop(items):
    pool = set(items)
    return pool.pop()  # expect: det-unsorted-iteration


def tp_yield_from_set(items):
    pool = set(items)
    for value in pool:  # expect: det-unsorted-iteration
        yield value


def tp_set_operator(left, right):
    overlap = set(left) & set(right)
    out = []
    for value in overlap:  # expect: det-unsorted-iteration
        out.append(value)
    return out


def fp_sorted_iteration(items):
    chosen = {x for x in items if x > 0}
    out = []
    for value in sorted(chosen):
        out.append(value)
    return out


def fp_order_insensitive_aggregation(items):
    pool = set(items)
    total = 0
    for value in pool:
        total += value
    return total, max(pool), sum(pool), len(pool)


def fp_sanitized_after_append(items):
    pool = set(items)
    out = []
    for value in pool:
        out.append(value)
    out.sort()
    return out


def fp_sorted_consumer(items):
    pool = set(items)
    return sorted([x for x in pool])


def fp_membership_and_set_build(items, probe):
    pool = set(items)
    other = {x for x in pool}
    return probe in pool, other


def fp_unknown_source(records):
    out = []
    for record in records:
        out.append(record)
    return out
