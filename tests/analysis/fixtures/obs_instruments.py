"""Observability fixtures: instruments mutate through their API."""

import threading

from repro.obs.metrics import default_registry

registry = default_registry()


def tp_direct_counter_write():
    hits = registry.counter("si_fixture_hits_total", "fixture")
    hits._totals[()] = 5  # expect: obs-unlocked-instrument
    hits.count += 1  # expect: obs-unlocked-instrument


def tp_gauge_subscript():
    depth = default_registry().gauge("si_fixture_depth", "fixture")
    depth._values[("a",)] += 1  # expect: obs-unlocked-instrument


def fp_instrument_api():
    hits = registry.counter("si_fixture_hits_total", "fixture")
    hits.inc()
    hits.inc(3)
    latency = registry.histogram("si_fixture_seconds", "fixture")
    latency.observe(0.5)


def fp_under_lock():
    lock = threading.Lock()
    hist = registry.histogram("si_fixture_seconds", "fixture")
    with lock:
        hist._counts = {}


def fp_rebinding_is_fine():
    gauge = registry.gauge("si_fixture_depth", "fixture")
    gauge.set(2)
    gauge = None
    return gauge


def fp_plain_object(store):
    store.count += 1
    store.rows["k"] = 1
