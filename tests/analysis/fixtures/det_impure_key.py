"""Determinism fixtures: impure sources in cache-key builders."""

import hashlib
import time
import uuid


def tp_timestamped_cache_key(artifact):
    stamp = time.time()  # expect: det-impure-key
    return f"{artifact.name}-{stamp}"


def tp_uuid_envelope_header(kind):
    return {"kind": kind,
            "token": uuid.uuid4()}  # expect: det-impure-key


def tp_identity_digest(value):
    return id(value)  # expect: det-impure-key


def fp_content_key(artifact):
    return hashlib.sha256(artifact.payload).hexdigest()


def fp_timing_helper():
    started = time.time()
    return time.time() - started
