"""Degradation-hygiene fixtures: exception handler shapes."""


def tp_bare_except(work):
    try:
        return work()
    except:  # expect: exc-swallow-interrupt
        return None


def tp_base_exception(work):
    try:
        return work()
    except BaseException:  # expect: exc-swallow-interrupt
        return None


def tp_silent_broad_degrade(work):
    try:
        return work()
    except Exception:  # expect: exc-broad-degrade
        return None


def fp_broad_but_reraises(work, log):
    try:
        return work()
    except Exception:
        log.rollback()
        raise


def fp_broad_but_inspects(work, log):
    try:
        return work()
    except Exception as error:
        log.warning("degraded: %s", error)
        return None


def fp_base_exception_reraise(work, cleanup):
    try:
        return work()
    except BaseException:
        cleanup()
        raise


def fp_specific_errors(work):
    try:
        return work()
    except (ValueError, KeyError):
        return None
