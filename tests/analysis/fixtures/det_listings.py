"""Determinism fixtures: directory-order filesystem listings."""

import glob
import os


def tp_listdir_inventory(root):
    entries = []
    for name in os.listdir(root):  # expect: det-unsorted-listing
        entries.append(name)
    return entries


def tp_walk_inventory(root):
    found = []
    for directory, _, names in os.walk(root):  # expect: det-unsorted-listing
        found.append(directory)
    return found


def tp_walk_filenames(root):
    found = []
    for directory, dirs, names in os.walk(root):
        dirs.sort()
        for name in names:  # expect: det-unsorted-listing
            found.append(name)
    return found


def tp_glob_materialized(pattern):
    return list(glob.glob(pattern))  # expect: det-unsorted-listing


def fp_sorted_listdir(root):
    entries = []
    for name in sorted(os.listdir(root)):
        entries.append(name)
    return entries


def fp_sorted_walk_idiom(root):
    found = []
    for directory, dirs, names in os.walk(root):
        dirs.sort()
        for name in sorted(names):
            found.append(name)
    return found


def fp_order_insensitive_walk(root):
    total = 0
    for directory, dirs, names in os.walk(root):
        total += len(names)
    return total
