"""``si-mapper lint`` end to end: exit codes, JSON, the gate.

The acceptance criterion for the CI gate: introducing a synthetic
unsorted-set-iteration (or unlocked-handler-write) regression must
flip the exit code to non-zero even with a populated baseline.
"""

import json

import pytest

from repro.cli import main

BUGGY_SET = """\
def first(items):
    pool = set(items)
    for value in pool:
        return value
"""

BUGGY_HANDLER = """\
from http.server import BaseHTTPRequestHandler


class Handler(BaseHTTPRequestHandler):
    def do_POST(self):
        self.server.jobs["x"] = 1
"""

CLEAN = """\
def first(items):
    pool = set(items)
    for value in sorted(pool):
        return value
"""


@pytest.fixture
def workdir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, workdir, capsys):
        (workdir / "mod.py").write_text(CLEAN)
        assert main(["lint", "mod.py"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_finding_exits_one(self, workdir, capsys):
        (workdir / "mod.py").write_text(BUGGY_SET)
        assert main(["lint", "mod.py"]) == 1
        out = capsys.readouterr().out
        assert "det-unsorted-iteration" in out

    def test_handler_regression_exits_one(self, workdir):
        (workdir / "srv.py").write_text(BUGGY_HANDLER)
        assert main(["lint", "srv.py"]) == 1

    def test_missing_path_exits_two(self, workdir, capsys):
        assert main(["lint", "no-such-dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, workdir, capsys):
        (workdir / "mod.py").write_text(CLEAN)
        assert main(["lint", "--rules", "not-a-rule", "mod.py"]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestBaselineFlow:
    def test_write_then_clean_then_regression(self, workdir, capsys):
        """The CI story in one test: accept today's findings, stay
        green, then a *new* regression still fails the gate."""
        (workdir / "legacy.py").write_text(BUGGY_SET)
        assert main(["lint", "legacy.py", "--write-baseline"]) == 0
        assert main(["lint", "legacy.py"]) == 0
        out = capsys.readouterr().out
        assert "accepted" in out
        # a fresh regression is not covered by the baseline
        (workdir / "fresh.py").write_text(BUGGY_SET)
        assert main(["lint", "legacy.py", "fresh.py"]) == 1

    def test_no_baseline_flag_reports_everything(self, workdir):
        (workdir / "legacy.py").write_text(BUGGY_SET)
        assert main(["lint", "legacy.py", "--write-baseline"]) == 0
        assert main(["lint", "legacy.py", "--no-baseline"]) == 1

    def test_rewrite_keeps_justification(self, workdir):
        (workdir / "legacy.py").write_text(BUGGY_SET)
        main(["lint", "legacy.py", "--write-baseline"])
        payload = json.loads(
            (workdir / "lint-baseline.json").read_text())
        payload["entries"][0]["justification"] = "reviewed by a human"
        (workdir / "lint-baseline.json").write_text(
            json.dumps(payload))
        main(["lint", "legacy.py", "--write-baseline"])
        rewritten = json.loads(
            (workdir / "lint-baseline.json").read_text())
        assert (rewritten["entries"][0]["justification"]
                == "reviewed by a human")


class TestJsonOutput:
    def test_json_shape(self, workdir, capsys):
        (workdir / "mod.py").write_text(BUGGY_SET)
        assert main(["lint", "--json", "mod.py"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {"new": 1, "accepted": 0}
        (entry,) = payload["new"]
        assert entry["rule"] == "det-unsorted-iteration"
        assert entry["path"] == "mod.py"
        assert entry["line"] == 3
        assert entry["severity"] == "error"

    def test_json_accepted_section(self, workdir, capsys):
        (workdir / "mod.py").write_text(BUGGY_SET)
        main(["lint", "mod.py", "--write-baseline"])
        capsys.readouterr()
        assert main(["lint", "--json", "mod.py"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {"new": 0, "accepted": 1}


class TestRuleSelection:
    def test_list_rules(self, workdir, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "det-unsorted-iteration" in out
        assert "pickle-unrestricted-load" in out

    def test_rules_filter(self, workdir):
        (workdir / "mod.py").write_text(BUGGY_SET)
        assert main(["lint", "--rules", "exc-broad-degrade",
                     "mod.py"]) == 0
        assert main(["lint", "--rules",
                     "det-unsorted-iteration,exc-broad-degrade",
                     "mod.py"]) == 1
