"""Tests for the small shared helpers."""

import pytest

from repro._util import FrozenVector, pairwise, proper_subsets, unique


class TestUnique:
    def test_preserves_first_occurrence(self):
        assert unique([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_empty(self):
        assert unique([]) == []


class TestPairwise:
    def test_pairs(self):
        assert list(pairwise([1, 2, 3])) == [(1, 2), (2, 3)]

    def test_short(self):
        assert list(pairwise([1])) == []


class TestProperSubsets:
    def test_excludes_full_set(self):
        subsets = list(proper_subsets((1, 2, 3)))
        assert (1, 2, 3) not in subsets
        assert (1,) in subsets and (1, 2) in subsets

    def test_min_size(self):
        subsets = list(proper_subsets((1, 2, 3), min_size=2))
        assert all(len(s) >= 2 for s in subsets)

    def test_max_count(self):
        assert len(list(proper_subsets(tuple(range(10)),
                                       max_count=5))) == 5


class TestFrozenVector:
    def test_binary_validation(self):
        with pytest.raises(ValueError):
            FrozenVector({"a": 2})

    def test_lookup(self):
        v = FrozenVector({"a": 1, "b": 0})
        assert v["a"] == 1
        assert v.get("z", 7) == 7
        assert "b" in v and "z" not in v
        with pytest.raises(KeyError):
            v["z"]

    def test_equality_order_independent(self):
        assert FrozenVector({"a": 1, "b": 0}) == \
            FrozenVector({"b": 0, "a": 1})
        assert hash(FrozenVector({"a": 1, "b": 0})) == \
            hash(FrozenVector({"b": 0, "a": 1}))

    def test_set_returns_copy(self):
        v = FrozenVector({"a": 0})
        w = v.set("a", 1)
        assert v["a"] == 0 and w["a"] == 1

    def test_without_and_restrict(self):
        v = FrozenVector({"a": 1, "b": 0, "c": 1})
        assert v.without("b").keys() == ["a", "c"]
        assert v.restrict(["a"]).as_dict() == {"a": 1}

    def test_bits(self):
        v = FrozenVector({"a": 1, "b": 0, "c": 1})
        assert v.bits(["a", "b", "c"]) == "101"
        assert v.bits(["c", "a"]) == "11"

    def test_items_sorted(self):
        v = FrozenVector({"b": 0, "a": 1})
        assert v.items() == (("a", 1), ("b", 0))
        assert list(v) == ["a", "b"]
