"""The metrics registry: instrument semantics, exposition format,
registration invariants, and the process-default swap."""

import threading

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, default_registry,
                               use_registry)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_value_total(self, registry):
        counter = registry.counter("si_t_total", "help", ("op",))
        counter.inc(op="hit")
        counter.inc(2, op="hit")
        counter.inc(5, op="miss")
        assert counter.value(op="hit") == 3
        assert counter.value(op="miss") == 5
        assert counter.total() == 8

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("si_t_total")
        with pytest.raises(ReproError):
            counter.inc(-1)

    def test_total_suffix_normalized(self, registry):
        """``x_total`` and ``x`` are the same counter (the exposition
        re-appends the suffix), never ``x_total_total``."""
        a = registry.counter("si_t_total")
        b = registry.counter("si_t")
        assert a is b
        a.inc()
        (sample,) = a.samples()
        assert sample.name == "si_t_total"

    def test_labels_must_match_declaration(self, registry):
        counter = registry.counter("si_t_total", "", ("op",))
        with pytest.raises(ReproError):
            counter.inc()                      # missing label
        with pytest.raises(ReproError):
            counter.inc(tier="disk")           # wrong label


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("si_depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13

    def test_labeled_series_are_independent(self, registry):
        gauge = registry.gauge("si_entries", "", ("kind",))
        gauge.set(3, kind="sg")
        gauge.set(7, kind="map")
        assert gauge.value(kind="sg") == 3
        assert gauge.value(kind="map") == 7


class TestHistogram:
    def test_cumulative_buckets(self, registry):
        hist = registry.histogram("si_h", "", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(5.55)
        by_le = {sample.labels[-1][1]: sample.value
                 for sample in hist.samples()
                 if sample.name == "si_h_bucket"}
        assert by_le == {"0.1": 1, "1": 2, "+Inf": 3}

    def test_inf_bucket_auto_appended(self, registry):
        hist = registry.histogram("si_h", "", buckets=(1.0,))
        assert hist.buckets[-1] == float("inf")

    def test_duplicate_buckets_rejected(self):
        with pytest.raises(ReproError):
            Histogram("si_h", "", buckets=(1.0, 1.0))


class TestRegistry:
    def test_same_name_same_instrument(self, registry):
        assert registry.gauge("si_g") is registry.gauge("si_g")

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("si_x_total")
        with pytest.raises(ReproError):
            registry.gauge("si_x")

    def test_label_mismatch_rejected(self, registry):
        registry.counter("si_x_total", "", ("op",))
        with pytest.raises(ReproError):
            registry.counter("si_x_total", "", ("tier",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ReproError):
            registry.counter("0bad")
        with pytest.raises(ReproError):
            registry.counter("si_x_total", "", ("bad-label",))
        with pytest.raises(ReproError):
            registry.counter("si_x_total", "", ("a", "a"))

    def test_counter_totals_covers_counters_only(self, registry):
        registry.counter("si_c_total", "", ("op",)).inc(3, op="hit")
        registry.gauge("si_g").set(9)
        registry.histogram("si_h").observe(0.1)
        totals = registry.counter_totals()
        assert totals == {'si_c_total{op="hit"}': 3}


class TestExposition:
    def test_prometheus_text_shape(self, registry):
        registry.counter("si_c_total", "Counts things.",
                         ("op",)).inc(2, op="hit")
        registry.gauge("si_g", "A level.").set(1.5)
        text = registry.render_prometheus()
        lines = text.splitlines()
        assert "# HELP si_c Counts things." in lines
        assert "# TYPE si_c counter" in lines
        assert 'si_c_total{op="hit"} 2' in lines
        assert "# TYPE si_g gauge" in lines
        assert "si_g 1.5" in lines
        assert text.endswith("\n")

    def test_label_values_escaped(self, registry):
        registry.counter("si_c_total", "", ("p",)).inc(
            1, p='a"b\\c\nd')
        text = registry.render_prometheus()
        assert 'si_c_total{p="a\\"b\\\\c\\nd"} 1' in text

    def test_render_is_deterministic(self):
        """Identical state renders identical bytes whatever the
        registration order — the /metrics contract."""
        one, two = MetricsRegistry(), MetricsRegistry()
        for registry, order in ((one, ("si_a", "si_b")),
                                (two, ("si_b", "si_a"))):
            for name in order:
                registry.counter(name + "_total", "h").inc(4)
        assert one.render_prometheus() == two.render_prometheus()


class TestDefaultRegistry:
    def test_use_registry_swaps_and_restores(self):
        before = default_registry()
        with use_registry() as fresh:
            assert default_registry() is fresh
            assert fresh is not before
        assert default_registry() is before

    def test_use_registry_accepts_explicit(self):
        mine = MetricsRegistry()
        with use_registry(mine):
            default_registry().counter("si_t_total").inc()
        assert mine.counter("si_t_total").total() == 1


class TestThreadSafety:
    def test_concurrent_updates_are_exact(self, registry):
        counter = registry.counter("si_c_total", "", ("op",))
        hist = registry.histogram("si_h")
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(500):
                counter.inc(op="hit")
                hist.observe(0.01)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(op="hit") == 4000
        assert hist.count() == 4000
