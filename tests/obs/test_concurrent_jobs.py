"""Two jobs raced through a 2-worker service with per-job tracing on:
each job gets its own well-nested span tree on its own worker thread,
and the shared registry counts every lifecycle event exactly once."""

import threading
import time

import pytest

from repro.bench_suite import benchmark
from repro.dist.jobs import DONE, JobParams, JobService
from repro.obs.metrics import use_registry
from repro.pipeline.context import SynthesisContext
from repro.stg.writer import write_g

HALF_G = write_g(benchmark("half"))
HAZARD_G = write_g(benchmark("hazard"))
PARAMS = JobParams(libraries=(2,), with_siegel=False)

#: stages the job pipeline always runs, in order
STAGES = ("load", "reach", "synthesize", "map", "report")


def wait_done(service, jobs, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        current = [service.get(job.id) for job in jobs]
        if all(job.state == DONE for job in current):
            return current
        time.sleep(0.01)
    pytest.fail(f"states: {[job.state for job in jobs]}")


@pytest.fixture
def raced(monkeypatch):
    """Both workers rendezvous inside their first ``state_graph``
    call, guaranteeing the two jobs genuinely overlap."""
    barrier = threading.Barrier(2, timeout=30.0)
    local = threading.local()
    original = SynthesisContext.state_graph

    def synchronized(self):
        if not getattr(local, "met", False):
            local.met = True
            barrier.wait()
        return original(self)

    monkeypatch.setattr(SynthesisContext, "state_graph", synchronized)
    return barrier


def well_nested(spans):
    """Every child interval sits inside its parent's (6-dp rounding
    gives the comparisons a small epsilon)."""
    by_id = {span["id"]: span for span in spans}
    eps = 5e-6
    for span in spans:
        parent = by_id.get(span["parent"])
        if parent is None:
            continue
        assert span["start"] >= parent["start"] - eps
        assert (span["start"] + span["duration"]
                <= parent["start"] + parent["duration"] + eps)
    return True


def test_raced_jobs_trace_disjointly_and_count_exactly(raced):
    with use_registry() as registry:
        service = JobService(cache=None, workers=2,
                             keep_trace=True).start()
        try:
            first, _ = service.submit(HALF_G, key="", params=PARAMS)
            second, _ = service.submit(HAZARD_G, key="", params=PARAMS)
            first, second = wait_done(service, [first, second])
        finally:
            service.stop()

        # each job carries a complete, well-nested span tree
        for job in (first, second):
            assert job.trace, f"job {job.name} has no trace"
            names = [span["name"] for span in job.trace]
            assert names[0] == "job"
            for stage in STAGES:
                assert f"stage:{stage}" in names
            (root,) = [span for span in job.trace
                       if span["parent"] is None]
            assert root["args"]["circuit"] == job.name
            assert well_nested(job.trace)

        # the trees are disjoint: separate tracers, separate workers
        first_threads = {span["thread"] for span in first.trace}
        second_threads = {span["thread"] for span in second.trace}
        assert first_threads.isdisjoint(second_threads)
        assert all(name.startswith("si-job-worker-")
                   for name in first_threads | second_threads)

        # and the shared registry saw each lifecycle event exactly once
        # per job
        jobs_total = registry.counter("si_jobs_total",
                                      labelnames=("event",))
        assert jobs_total.value(event="submitted") == 2
        assert jobs_total.value(event="completed") == 2
        assert jobs_total.value(event="deduplicated") == 0
        assert jobs_total.value(event="failed") == 0
        stage_seconds = registry.histogram("si_stage_seconds",
                                           labelnames=("stage",))
        for stage in STAGES:
            assert stage_seconds.count(stage=stage) == 2
        run_seconds = registry.histogram("si_job_run_seconds")
        assert run_seconds.count() == 2
