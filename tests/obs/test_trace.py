"""The span tracer: nesting, the progress bridge, stat deltas,
Chrome export, the trace-file loader, and the Table-1 byte-identity
guarantee with tracing on."""

import json

import pytest

from repro.dist.jobs import canonical_row_bytes
from repro.errors import ReproError
from repro.mapping.progress import emit_progress
from repro.obs.metrics import use_registry
from repro.obs.trace import (Tracer, current_tracer, format_summary,
                             format_tree, load_trace, summarize_trace,
                             trace_span, write_chrome_trace)
from repro.pipeline import Pipeline, PipelineConfig


def span_by_name(tracer, name):
    (found,) = [span for span in tracer.snapshot()
                if span.name == name]
    return found


class TestSpans:
    def test_nesting_and_parentage(self):
        tracer = Tracer()
        with tracer.span("outer", "stage"):
            with tracer.span("inner", "map"):
                pass
        outer = span_by_name(tracer, "outer")
        inner = span_by_name(tracer, "inner")
        assert inner.parent_id == outer.span_id
        assert (outer.depth, inner.depth) == (0, 1)
        assert outer.duration >= inner.duration >= 0
        assert inner.start >= outer.start

    def test_enter_returns_mutable_args(self):
        tracer = Tracer()
        with tracer.span("x", "map", target="csig") as args:
            args["outcome"] = "accepted"
        span = span_by_name(tracer, "x")
        assert span.args == {"target": "csig", "outcome": "accepted"}

    def test_instant_has_zero_ish_duration(self):
        tracer = Tracer()
        tracer.instant("note")
        assert span_by_name(tracer, "note").duration is not None

    def test_limit_drops_oldest(self):
        tracer = Tracer(limit=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.snapshot()] == ["s3", "s4"]
        assert tracer.dropped == 3

    def test_cpu_time_recorded(self):
        tracer = Tracer()
        with tracer.span("busy"):
            sum(range(10000))
        assert span_by_name(tracer, "busy").cpu >= 0


class TestCurrentTracer:
    def test_trace_span_without_tracer_is_shared_noop(self):
        assert current_tracer() is None
        handle = trace_span("anything", "map")
        assert handle is trace_span("other")     # one shared object
        with handle as args:
            assert args is None                  # callers must tolerate

    def test_activate_installs_and_restores(self):
        tracer = Tracer()
        with tracer.activate():
            assert current_tracer() is tracer
            with trace_span("seen", "map"):
                pass
        assert current_tracer() is None
        assert span_by_name(tracer, "seen").name == "seen"


class TestProgressBridge:
    def test_stage_events_become_spans(self):
        tracer = Tracer()
        with tracer.activate():
            emit_progress("load", "start")
            emit_progress("load", "done", seconds=0.25)
        span = span_by_name(tracer, "stage:load")
        assert span.category == "stage"
        assert span.args["reported_seconds"] == 0.25

    def test_mismatched_done_unwinds_left_open_spans(self):
        """A `done` for an outer stage closes anything the exception
        path left open above it — the tree stays well-formed."""
        tracer = Tracer()
        with tracer.activate():
            emit_progress("outer", "start")
            emit_progress("inner", "start")
            emit_progress("outer", "done")
        inner = span_by_name(tracer, "stage:inner")
        outer = span_by_name(tracer, "stage:outer")
        assert inner.duration is not None
        assert inner.parent_id == outer.span_id

    def test_other_statuses_become_instants(self):
        tracer = Tracer()
        with tracer.activate():
            emit_progress("map", "note", detail="candidate 3")
        span = span_by_name(tracer, "map:note")
        assert span.category == "note"
        assert span.args["detail"] == "candidate 3"


class TestStatDeltas:
    def test_delta_category_attaches_counter_diffs(self):
        with use_registry() as registry:
            tracer = Tracer()
            with tracer.span("work", "stage"):
                registry.counter("si_t_total", "", ("op",)).inc(
                    3, op="hit")
        span = span_by_name(tracer, "work")
        assert span.args["stats"] == {'si_t_total{op="hit"}': 3}
        assert not any(key.startswith("_") for key in span.args)

    def test_non_delta_category_attaches_nothing(self):
        with use_registry() as registry:
            tracer = Tracer()
            with tracer.span("work", "map"):
                registry.counter("si_t_total").inc()
        assert "stats" not in span_by_name(tracer, "work").args


class TestChromeExport:
    def test_event_shape(self):
        tracer = Tracer()
        with tracer.span("outer", "stage", detail="d"):
            with tracer.span("inner"):
                pass
        document = tracer.chrome_trace()
        assert document["displayTimeUnit"] == "ms"
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "thread_name"
        complete = {e["name"]: e for e in document["traceEvents"]
                    if e["ph"] == "X"}
        outer, inner = complete["outer"], complete["inner"]
        assert outer["cat"] == "stage"
        assert outer["dur"] >= inner["dur"] >= 0
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert not any(key.startswith("_")
                       for key in outer["args"])

    def test_write_load_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", "stage"):
            with tracer.span("b", "map"):
                pass
        path = str(tmp_path / "run.trace.json")
        assert write_chrome_trace(path, tracer) == 2
        events = load_trace(path)
        assert [e["name"] for e in events] == ["a", "b"]
        assert all(e["ph"] == "X" for e in events)

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ReproError):
            load_trace(str(bad))
        bad.write_text('"a bare string"')
        with pytest.raises(ReproError):
            load_trace(str(bad))

    def test_summarize_and_format(self):
        events = [
            {"name": "x", "ph": "X", "ts": 0, "dur": 2000, "tid": 1,
             "args": {"span_id": 1}},
            {"name": "x", "ph": "X", "ts": 3000, "dur": 4000, "tid": 1,
             "args": {"span_id": 2}},
            {"name": "y", "ph": "X", "ts": 0, "dur": 1000, "tid": 1,
             "args": {"span_id": 3}},
        ]
        rows = summarize_trace(events)
        assert rows[0] == {"name": "x", "count": 2, "total_ms": 6.0,
                           "mean_ms": 3.0, "max_ms": 4.0}
        text = format_summary(rows, top=1)
        assert "x" in text and "1 more span names" in text

    def test_format_tree_indents_children(self):
        events = [
            {"name": "parent", "ph": "X", "ts": 0, "dur": 5000,
             "tid": 1, "args": {"span_id": 1}},
            {"name": "child", "ph": "X", "ts": 1000, "dur": 1000,
             "tid": 1, "args": {"span_id": 2, "parent_id": 1}},
        ]
        lines = format_tree(events).splitlines()
        assert lines[0] == "thread 1:"
        assert lines[1].startswith("  parent")
        assert lines[2].startswith("    child")


class TestPipelineUnderTracer:
    CONFIG = dict(libraries=(2,), with_siegel=False,
                  keep_artifacts=False)

    def test_stage_spans_cover_the_run(self):
        with use_registry():
            tracer = Tracer()
            with tracer.activate():
                Pipeline(PipelineConfig(**self.CONFIG)).run("half")
        names = [span.name for span in tracer.snapshot()]
        for stage in ("load", "reach", "synthesize", "map", "report"):
            assert f"stage:{stage}" in names

    def test_row_bytes_identical_with_tracing_on(self):
        """--trace must be pure observation: the Table-1 row bytes
        with a tracer active equal the untraced run's bytes."""
        with use_registry():
            plain = Pipeline(PipelineConfig(**self.CONFIG)).run("half")
        with use_registry():
            tracer = Tracer()
            with tracer.activate():
                traced = Pipeline(
                    PipelineConfig(**self.CONFIG)).run("half")
        assert canonical_row_bytes(plain.row) \
            == canonical_row_bytes(traced.row)


class TestJsonExportIsSerializable:
    def test_span_to_json_roundtrips(self):
        with use_registry() as registry:
            tracer = Tracer()
            with tracer.span("j", "job", id="abc"):
                registry.counter("si_t_total").inc()
        payloads = [span.to_json() for span in tracer.snapshot()]
        assert json.loads(json.dumps(payloads)) == payloads
